//! Item extraction: functions, impl owners, and `static` declarations.
//!
//! This is a structural pass over the token stream from [`crate::lexer`].
//! It tracks brace depth to find item boundaries, records which `impl`
//! (or `trait`) block a `fn` lives in so calls can be resolved as
//! `Owner::method`, and notes each function's body span in token
//! indices so rules and the call-graph builder can scan bodies without
//! re-parsing. `#[cfg(test)]`-gated and `mod tests` items are flagged
//! so concurrency rules can skip them.

use crate::lexer::{Kind, Tok};

/// A function item found in one file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index into the workspace file list.
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// The `impl`/`trait` type the fn belongs to, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index span `[start, end)` of the body (inside the braces),
    /// or `None` for bodyless trait signatures.
    pub body: Option<(usize, usize)>,
    /// True when the fn is inside `#[cfg(test)]` / a `tests` module or
    /// is itself `#[test]`.
    pub is_test: bool,
}

impl FnItem {
    /// `Owner::name` when owned, else the bare name.
    pub fn qname(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `static` item declaration.
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// Index into the workspace file list.
    pub file: usize,
    /// The static's name.
    pub name: String,
    /// 1-based line of the `static` keyword.
    pub line: usize,
    /// True when declared under `#[cfg(test)]` / `mod tests`.
    pub is_test: bool,
}

/// Everything the structural pass extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub statics: Vec<StaticItem>,
}

/// Find the matching `}` for the `{` at `open` (token index), returning
/// the index of the closer. Tolerates truncated input.
fn matching_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Parse the self-type of an `impl` header starting just after the
/// `impl` keyword: skips generics, handles `impl Trait for Type`, and
/// returns the last path segment of the implemented-on type.
fn impl_owner(tokens: &[Tok], mut i: usize) -> (Option<String>, usize) {
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') || t.is_punct(';') {
            break;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle == 0 {
            if t.is_ident("where") {
                // Bounds follow; the self type is already known.
                while i < tokens.len() && !tokens[i].is_punct('{') && !tokens[i].is_punct(';') {
                    i += 1;
                }
                break;
            }
            if t.is_ident("for") {
                saw_for = true;
                after_for = None;
            } else if t.kind == Kind::Ident {
                if saw_for {
                    after_for = Some(t.text.clone());
                } else {
                    last_ident = Some(t.text.clone());
                }
            }
        } else if t.kind == Kind::Ident && angle > 0 {
            // Identifiers inside generics never name the self type.
        }
        i += 1;
    }
    (after_for.or(last_ident), i)
}

/// Words that may precede `fn` in a signature.
fn is_fn_qualifier(t: &Tok) -> bool {
    t.kind == Kind::Ident
        && matches!(
            t.text.as_str(),
            "pub" | "const" | "unsafe" | "async" | "extern" | "crate" | "in" | "super" | "self"
        )
}

/// Does an attribute `#[...]` starting at `i` (the `#`) gate tests?
/// Recognizes `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]` etc.
fn attr_is_test(tokens: &[Tok], i: usize) -> bool {
    if !tokens.get(i).is_some_and(|t| t.is_punct('#')) {
        return false;
    }
    let mut j = i + 1;
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return false;
    }
    let mut depth = 0i32;
    let mut saw_test = false;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_ident("test") {
            saw_test = true;
        }
        j += 1;
    }
    saw_test
}

/// Skip an attribute starting at `#`; returns the index after `]`.
fn skip_attr(tokens: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    // `#![...]` inner attributes have a `!` before `[`.
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Extract items from one file's token stream. `file` is the caller's
/// index for this file in the workspace list.
pub fn extract(file: usize, tokens: &[Tok]) -> FileItems {
    let mut out = FileItems::default();
    // Stack of (close-brace token index, owner, in_test) scopes.
    let mut scopes: Vec<(usize, Option<String>, bool)> = Vec::new();
    let mut pending_test_attr = false;
    let mut i = 0usize;
    while i < tokens.len() {
        // Pop scopes we have moved past.
        while scopes.last().is_some_and(|s| i > s.0) {
            scopes.pop();
        }
        let in_test = scopes.last().is_some_and(|s| s.2);
        let owner = scopes.last().and_then(|s| s.1.clone());
        let t = &tokens[i];
        if t.is_punct('#') && tokens.get(i + 1).is_some_and(|n| n.is_punct('[')) {
            if attr_is_test(tokens, i) {
                pending_test_attr = true;
            }
            i = skip_attr(tokens, i);
            continue;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            let start = if t.is_ident("trait") {
                // `trait Name {` — the owner is the trait name itself.
                i + 1
            } else {
                i + 1
            };
            let (own, hdr_end) = if t.is_ident("trait") {
                let name = tokens
                    .get(i + 1)
                    .filter(|n| n.kind == Kind::Ident)
                    .map(|n| n.text.clone());
                let mut j = start;
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                (name, j)
            } else {
                impl_owner(tokens, start)
            };
            if tokens.get(hdr_end).is_some_and(|x| x.is_punct('{')) {
                let close = matching_brace(tokens, hdr_end);
                let test = in_test || pending_test_attr;
                scopes.push((close, own, test));
                pending_test_attr = false;
                i = hdr_end + 1;
                continue;
            }
            pending_test_attr = false;
            i = hdr_end + 1;
            continue;
        }
        if t.is_ident("mod") {
            if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == Kind::Ident) {
                if tokens.get(i + 2).is_some_and(|x| x.is_punct('{')) {
                    let close = matching_brace(tokens, i + 2);
                    let test = in_test || pending_test_attr || name.text == "tests";
                    scopes.push((close, owner.clone(), test));
                    pending_test_attr = false;
                    i += 3;
                    continue;
                }
            }
            pending_test_attr = false;
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            // Reject `fn` inside a signature position we don't model
            // (e.g. `fn(` function-pointer types have no name ident).
            if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == Kind::Ident) {
                // Find the body `{` at paren/bracket depth 0, or `;`.
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut angle = 0i32;
                let mut body = None;
                while j < tokens.len() {
                    let x = &tokens[j];
                    if x.is_punct('(') || x.is_punct('[') {
                        paren += 1;
                    } else if x.is_punct(')') || x.is_punct(']') {
                        paren -= 1;
                    } else if x.is_punct('<') {
                        angle += 1;
                    } else if x.is_punct('>') {
                        if angle > 0 {
                            angle -= 1;
                        }
                    } else if paren == 0 && x.is_punct(';') {
                        break;
                    } else if paren == 0 && x.is_punct('{') {
                        let close = matching_brace(tokens, j);
                        body = Some((j + 1, close));
                        break;
                    }
                    j += 1;
                }
                let fn_is_test = in_test || pending_test_attr;
                out.fns.push(FnItem {
                    file,
                    name: name.text.clone(),
                    owner: owner.clone(),
                    line: t.line,
                    body,
                    is_test: fn_is_test,
                });
                pending_test_attr = false;
                if let Some((start, close)) = body {
                    // Descend into the body so nested fns/items are seen,
                    // inheriting the test flag via a scope.
                    scopes.push((close, owner.clone(), fn_is_test));
                    i = start;
                    continue;
                }
                i = j + 1;
                continue;
            }
        }
        if t.is_ident("static") {
            // `static [mut] NAME: …` — but not part of a signature
            // qualifier run we care about; lifetimes never lex as this.
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|x| x.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = tokens.get(j).filter(|n| n.kind == Kind::Ident) {
                if tokens.get(j + 1).is_some_and(|x| x.is_punct(':')) {
                    out.statics.push(StaticItem {
                        file,
                        name: name.text.clone(),
                        line: t.line,
                        is_test: in_test || pending_test_attr,
                    });
                }
            }
            pending_test_attr = false;
            i = j + 1;
            continue;
        }
        if t.kind == Kind::Ident && is_fn_qualifier(t) {
            // Qualifiers keep a pending #[test] attached to the item.
            i += 1;
            continue;
        }
        if t.kind == Kind::Ident || !t.is_punct('#') {
            pending_test_attr = false;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> FileItems {
        extract(0, &lex(src).tokens)
    }

    #[test]
    fn free_and_owned_fns() {
        let src = "
            pub fn free() {}
            impl Foo { pub fn method(&self) -> u32 { 1 } }
            impl<T> Bar<T> { fn gen(&self) {} }
            impl Display for Baz { fn fmt(&self) {} }
            trait Act { fn go(&self); fn stop(&self) {} }
        ";
        let f = items(src);
        let q: Vec<String> = f.fns.iter().map(|f| f.qname()).collect();
        assert_eq!(
            q,
            [
                "free",
                "Foo::method",
                "Bar::gen",
                "Baz::fmt",
                "Act::go",
                "Act::stop"
            ]
        );
        assert!(f.fns[4].body.is_none(), "trait signature has no body");
        assert!(f.fns[5].body.is_some());
    }

    #[test]
    fn test_gating_is_detected() {
        let src = "
            fn prod() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn check() {}
            }
            #[test]
            fn top_level_test() {}
        ";
        let f = items(src);
        let flags: Vec<(String, bool)> =
            f.fns.iter().map(|f| (f.name.clone(), f.is_test)).collect();
        assert_eq!(
            flags,
            [
                ("prod".to_owned(), false),
                ("check".to_owned(), true),
                ("top_level_test".to_owned(), true)
            ]
        );
    }

    #[test]
    fn statics_found_but_not_lifetimes() {
        let src = "
            static GLOBAL: u32 = 1;
            static mut COUNTER: u64 = 0;
            fn f(s: &'static str) -> &'static str { s }
            #[cfg(test)]
            mod tests { static TEST_ONLY: u8 = 0; }
        ";
        let f = items(src);
        let names: Vec<(String, bool)> = f
            .statics
            .iter()
            .map(|s| (s.name.clone(), s.is_test))
            .collect();
        assert_eq!(
            names,
            [
                ("GLOBAL".to_owned(), false),
                ("COUNTER".to_owned(), false),
                ("TEST_ONLY".to_owned(), true)
            ]
        );
    }

    #[test]
    fn nested_fn_bodies_are_spanned() {
        let src = "fn outer() { let c = |x: u32| x + 1; inner(c); } fn after() {}";
        let f = items(src);
        assert_eq!(f.fns.len(), 2);
        let (s, e) = f.fns[0].body.unwrap();
        assert!(s < e);
        assert_eq!(f.fns[1].name, "after");
    }
}
