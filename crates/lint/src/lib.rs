//! # iw-lint — workspace invariant checker
//!
//! A dependency-free, text-level linter for the invariants this
//! workspace relies on but `rustc`/`clippy` cannot see:
//!
//! * **`no-wall-clock`** — deterministic crates must never read real
//!   time; all time comes from the simulator's virtual clock.
//! * **`no-unordered-iteration`** — result/analysis/telemetry paths
//!   must not iterate hash containers (ordering leaks into output).
//! * **`metrics-manifest`** — every metric call site must agree with
//!   the single-source-of-truth manifest in
//!   `crates/telemetry/src/manifest.rs` (name, kind, scope).
//! * **`state-machine`** — the session state machines' transition
//!   tables (see [`machines`]) are internally exhaustive and in sync
//!   with the enums that implement them.
//! * **`panic-budget`** — library code does not `unwrap`/`expect`/
//!   `panic!` except at sites with a justified suppression.
//! * **`rng-hygiene`** — randomness is always seeded from scan/session
//!   configuration, never from OS entropy.
//! * **`unsafe-forbidden`** — every library crate carries
//!   `#![forbid(unsafe_code)]`.
//!
//! ## Suppressions
//!
//! A diagnostic is suppressed by `// iw-lint: allow(<rule>)` on the
//! offending line or the line directly above it (a reason after the
//! marker is encouraged), or by an entry in
//! `crates/lint/allowlist.txt` (`<rule> <path> <substring>` per line).
//!
//! ## Scope and limits
//!
//! The linter reads source text, not an AST: line comments and string
//! literal *contents* are stripped before pattern matching (so a
//! pattern named in a string or a comment never fires), and everything
//! at or below a `#[cfg(test)]` line is treated as test code, which
//! most rules exempt. That heuristic is deliberate — the codebase
//! keeps unit tests in a trailing `mod tests` — and keeps the linter
//! fast, dependency-free and obvious.
#![forbid(unsafe_code)]

pub mod machines;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule names with one-line descriptions, in report order.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-wall-clock",
        "deterministic crates must not read real time",
    ),
    (
        "no-unordered-iteration",
        "output paths must not iterate hash containers",
    ),
    (
        "metrics-manifest",
        "metric call sites must match the telemetry manifest",
    ),
    (
        "state-machine",
        "session state machines must be exhaustive and in sync",
    ),
    (
        "panic-budget",
        "library code must not panic without a justified allow",
    ),
    (
        "rng-hygiene",
        "RNGs must be seeded from configuration, not entropy",
    ),
    ("unsafe-forbidden", "library crates must forbid unsafe code"),
];

/// One violation, pointing at a workspace-relative file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number; 0 for whole-file diagnostics.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// The offending source line (empty for whole-file diagnostics).
    pub snippet: String,
    /// How to fix or suppress it.
    pub help: &'static str,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        if self.line > 0 {
            writeln!(f, "  --> {}:{}", self.path, self.line)?;
            if !self.snippet.is_empty() {
                let n = format!("{}", self.line);
                writeln!(f, "  {} | {}", n, self.snippet.trim_end())?;
            }
        } else {
            writeln!(f, "  --> {}", self.path)?;
        }
        write!(f, "  = help: {}", self.help)
    }
}

/// A source file prepared for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes
    /// (`crates/core/src/scanner.rs`).
    pub rel_path: String,
    /// Raw lines, as read.
    pub raw: Vec<String>,
    /// Lines with line comments removed and string-literal contents
    /// blanked — what the rules match against.
    pub code: Vec<String>,
    /// 0-based index of the first test line (the `#[cfg(test)]`
    /// attribute), or `usize::MAX` if the file has no test module.
    pub test_start: usize,
}

impl SourceFile {
    /// Prepare one file for linting.
    pub fn parse(rel_path: &str, content: &str) -> SourceFile {
        let raw: Vec<String> = content.lines().map(str::to_owned).collect();
        let code: Vec<String> = raw.iter().map(|l| strip_line(l)).collect();
        let test_start = raw
            .iter()
            .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
            .unwrap_or(usize::MAX);
        SourceFile {
            rel_path: rel_path.to_owned(),
            raw,
            code,
            test_start,
        }
    }

    /// The crate directory name (`core` for `crates/core/src/...`), or
    /// `""` for paths outside `crates/`.
    pub fn krate(&self) -> &str {
        let mut parts = self.rel_path.split('/');
        match (parts.next(), parts.next()) {
            (Some("crates"), Some(c)) => c,
            _ => "",
        }
    }

    /// Is the 0-based line index inside the trailing test module?
    pub fn is_test(&self, idx: usize) -> bool {
        idx >= self.test_start
    }

    /// Is `rule` suppressed at the 0-based line index? Looks for
    /// `iw-lint: allow(<rule>)` on the line itself or the line above
    /// (comments included — suppressions live in comments).
    pub fn allowed(&self, idx: usize, rule: &str) -> bool {
        let marker = format!("iw-lint: allow({rule})");
        let here = self.raw.get(idx).is_some_and(|l| l.contains(&marker));
        let above = idx > 0 && self.raw[idx - 1].contains(&marker);
        here || above
    }
}

/// Strip a line down to lintable code: drop everything after `//`
/// (outside string literals), blank string-literal contents, and skip
/// char literals so a quote inside one cannot open a "string".
fn strip_line(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_str = false;
                out.push('"');
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            '\'' => {
                // Char literal ('x', '\n') vs lifetime ('a): consume a
                // literal wholesale, pass a lifetime through.
                let mut look = chars.clone();
                match look.next() {
                    Some('\\') => {
                        chars.next();
                        for c2 in chars.by_ref() {
                            if c2 == '\'' {
                                break;
                            }
                        }
                        out.push_str("' '");
                    }
                    Some(_) if look.next() == Some('\'') => {
                        chars.next();
                        chars.next();
                        out.push_str("' '");
                    }
                    _ => out.push('\''),
                }
            }
            _ => out.push(c),
        }
    }
    out
}

/// One entry of `crates/lint/allowlist.txt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule the entry suppresses.
    pub rule: String,
    /// Workspace-relative file the entry applies to.
    pub path: String,
    /// Substring the offending raw line must contain.
    pub needle: String,
}

/// What to check and where. [`LintConfig::project`] encodes this
/// workspace's policy; tests build custom configs against fixtures.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates where `no-wall-clock` applies (crate dir names).
    pub wall_clock_crates: Vec<String>,
    /// Path prefixes where `no-unordered-iteration` applies.
    pub unordered_paths: Vec<String>,
    /// Crates exempt from `panic-budget` (experiment harnesses).
    pub panic_exempt_crates: Vec<String>,
    /// File-level suppressions (see `crates/lint/allowlist.txt`).
    pub allowlist: Vec<AllowEntry>,
    /// Workspace-relative path of the metrics manifest.
    pub manifest_path: String,
    /// Allowed metric-name families (`scan.` etc.); empty disables the
    /// family check.
    pub metric_families: Vec<String>,
    /// State machines to check.
    pub machines: Vec<machines::MachineSpec>,
}

impl LintConfig {
    /// The policy for this workspace.
    pub fn project() -> LintConfig {
        LintConfig {
            wall_clock_crates: ["core", "netsim", "hoststack", "wire", "telemetry"]
                .map(String::from)
                .to_vec(),
            unordered_paths: [
                "crates/core/src/results.rs",
                "crates/analysis/src/",
                "crates/telemetry/src/",
            ]
            .map(String::from)
            .to_vec(),
            panic_exempt_crates: ["bench"].map(String::from).to_vec(),
            allowlist: Vec::new(),
            manifest_path: "crates/telemetry/src/manifest.rs".to_owned(),
            metric_families: ["scan.", "shard.", "sim.", "trace."]
                .map(String::from)
                .to_vec(),
            machines: machines::project_machines(),
        }
    }
}

/// Read `crates/lint/allowlist.txt` under `root`, if present.
/// Format: one `<rule> <path> <substring>` per line; `#` comments.
pub fn load_allowlist(root: &Path) -> io::Result<Vec<AllowEntry>> {
    let path = root.join("crates/lint/allowlist.txt");
    if !path.exists() {
        return Ok(Vec::new());
    }
    let mut entries = Vec::new();
    for line in fs::read_to_string(&path)?.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(needle)) => entries.push(AllowEntry {
                rule: rule.to_owned(),
                path: path.to_owned(),
                needle: needle.trim().to_owned(),
            }),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed allowlist line: {line:?}"),
                ))
            }
        }
    }
    Ok(entries)
}

/// Collect every `crates/*/src/**/*.rs` under `root`, sorted by path.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut |path| {
                let rel = rel_path(root, path);
                let content = fs::read_to_string(path)?;
                files.push(SourceFile::parse(&rel, &content));
                Ok(())
            })?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn walk_rs(dir: &Path, f: &mut dyn FnMut(&Path) -> io::Result<()>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, f)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            f(&path)?;
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lint the workspace at `root` with `config`. Returns the surviving
/// (unsuppressed) diagnostics, sorted by path, line, rule.
pub fn run(root: &Path, config: &LintConfig) -> io::Result<Vec<Diagnostic>> {
    let files = collect_workspace(root)?;
    Ok(check_files(&files, config))
}

/// Lint pre-collected files — the engine behind [`run`], used directly
/// by the fixture tests.
pub fn check_files(files: &[SourceFile], config: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    rules::no_wall_clock(files, config, &mut diags);
    rules::no_unordered_iteration(files, config, &mut diags);
    rules::metrics_manifest(files, config, &mut diags);
    rules::state_machine(files, config, &mut diags);
    rules::panic_budget(files, config, &mut diags);
    rules::rng_hygiene(files, config, &mut diags);
    rules::unsafe_forbidden(files, config, &mut diags);
    diags.retain(|d| !suppressed(d, files, config));
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    diags
}

fn suppressed(d: &Diagnostic, files: &[SourceFile], config: &LintConfig) -> bool {
    if d.line > 0 {
        if let Some(file) = files.iter().find(|f| f.rel_path == d.path) {
            if file.allowed(d.line - 1, d.rule) {
                return true;
            }
            if config.allowlist.iter().any(|a| {
                a.rule == d.rule && a.path == d.path && file.raw[d.line - 1].contains(&a.needle)
            }) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_and_string_contents() {
        assert_eq!(strip_line("let x = 1; // Instant::now()"), "let x = 1; ");
        assert_eq!(
            strip_line(r#"let p = ".unwrap()"; p.len()"#),
            r#"let p = ""; p.len()"#
        );
        assert_eq!(strip_line("x.unwrap() // ok"), "x.unwrap() ");
    }

    #[test]
    fn strip_handles_char_literals_and_lifetimes() {
        // A quote inside a char literal must not open a string.
        assert_eq!(
            strip_line("if c == '\"' { x.unwrap() }"),
            "if c == ' ' { x.unwrap() }"
        );
        // Lifetimes pass through unharmed.
        assert_eq!(
            strip_line("fn f<'a>(s: &'a str) {}"),
            "fn f<'a>(s: &'a str) {}"
        );
        // Escaped char literal.
        assert_eq!(strip_line(r"let n = '\n'; y()"), "let n = ' '; y()");
    }

    #[test]
    fn test_region_and_allows() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn a() {}\n// iw-lint: allow(panic-budget)\nfn b() {}\n#[cfg(test)]\nmod tests {}\n",
        );
        assert!(!f.is_test(0));
        assert!(f.is_test(3));
        assert!(f.is_test(4));
        assert!(f.allowed(1, "panic-budget"));
        assert!(f.allowed(2, "panic-budget")); // line above
        assert!(!f.allowed(0, "panic-budget"));
        assert!(!f.allowed(2, "rng-hygiene"));
        assert_eq!(f.krate(), "x");
    }

    #[test]
    fn rules_table_is_unique() {
        let names: Vec<&str> = RULES.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names.len(), sorted.len());
        assert_eq!(names.len(), 7);
    }
}
