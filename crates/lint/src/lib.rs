//! # iw-lint — workspace invariant checker
//!
//! A dependency-free static analyzer for the invariants this workspace
//! relies on but `rustc`/`clippy` cannot see:
//!
//! * **`no-wall-clock`** — deterministic crates must never read real
//!   time; all time comes from the simulator's virtual clock.
//! * **`no-unordered-iteration`** — result/analysis/telemetry paths
//!   must not iterate hash containers (ordering leaks into output).
//! * **`metrics-manifest`** — every metric call site must agree with
//!   the single-source-of-truth manifest in
//!   `crates/telemetry/src/manifest.rs` (name, kind, scope).
//! * **`state-machine`** — the session state machines' transition
//!   tables (see [`machines`]) are internally exhaustive and in sync
//!   with the enums that implement them.
//! * **`panic-budget`** — library code does not `unwrap`/`expect`/
//!   `panic!` except at sites with a justified suppression.
//! * **`rng-hygiene`** — randomness is always seeded from scan/session
//!   configuration, never from OS entropy.
//! * **`unsafe-forbidden`** — every library crate carries
//!   `#![forbid(unsafe_code)]`.
//! * **`shared-state-audit`** — every interior-mutability primitive
//!   (`static`, `Mutex`, `RwLock`, `Atomic*`, `Rc`, `RefCell`) in the
//!   audited crates is declared in the concurrency manifest
//!   ([`concurrency`]) with a role, and lock acquisitions nest in
//!   declared rank order.
//! * **`hot-path-purity`** — functions reachable in the call graph
//!   from declared hot-path roots must not allocate, lock or perform
//!   I/O without an annotated suppression.
//! * **`channel-discipline`** — cross-shard send/recv sites must use a
//!   declared channel endpoint from files the manifest allows.
//!
//! ## Pipeline
//!
//! Since iw-lint v2 the engine is no longer line-regex scanning: every
//! file is run through a small Rust lexer ([`lexer`], which handles
//! nested block comments, raw strings, char literals and multi-line
//! strings), items and `impl` owners are extracted from the token
//! stream ([`items`]), and an approximate name-resolved call graph is
//! built over the whole workspace ([`callgraph`]). Pattern rules match
//! token subsequences, so formatting, comments and string contents can
//! neither hide nor fake a violation.
//!
//! ## Suppressions
//!
//! A diagnostic is suppressed by `// iw-lint: allow(<rule>)` on the
//! offending line or the line directly above it (a reason after the
//! marker is encouraged), or by an entry in
//! `crates/lint/allowlist.txt` (`<rule> <path> <substring>` per line).
//! Allowlist entries are themselves audited: an entry whose rule, path
//! or substring no longer matches anything is reported by the
//! `allowlist-hygiene` meta rule, so suppressions cannot outlive the
//! code they excused.
//!
//! ## Scope and limits
//!
//! The analyzer is still heuristic where a full compiler would not be:
//! call resolution is name-based (same file preferred, then same
//! crate), and everything at or below a file's first `#[cfg(test)]`
//! line is treated as test code, which most rules exempt. Both
//! heuristics are deliberate — the codebase keeps unit tests in a
//! trailing `mod tests` — and keep the linter fast, dependency-free
//! and obvious.
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod concurrency;
pub mod emit;
pub mod items;
pub mod lexer;
pub mod machines;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule names with one-line descriptions, in report order.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-wall-clock",
        "deterministic crates must not read real time",
    ),
    (
        "no-unordered-iteration",
        "output paths must not iterate hash containers",
    ),
    (
        "metrics-manifest",
        "metric call sites must match the telemetry manifest",
    ),
    (
        "state-machine",
        "session state machines must be exhaustive and in sync",
    ),
    (
        "panic-budget",
        "library code must not panic without a justified allow",
    ),
    (
        "rng-hygiene",
        "RNGs must be seeded from configuration, not entropy",
    ),
    ("unsafe-forbidden", "library crates must forbid unsafe code"),
    (
        "shared-state-audit",
        "interior mutability must be declared in the concurrency manifest",
    ),
    (
        "hot-path-purity",
        "hot-path call trees must not allocate, lock or do I/O",
    ),
    (
        "channel-discipline",
        "send/recv sites must use declared channel endpoints",
    ),
];

/// The meta rule auditing `allowlist.txt` itself. Not in [`RULES`]
/// (it lints the lint configuration, not the workspace) but accepted
/// by `--rule` and reported like any other diagnostic.
pub const ALLOWLIST_RULE: &str = "allowlist-hygiene";

/// Workspace-relative path of the allowlist file.
pub const ALLOWLIST_PATH: &str = "crates/lint/allowlist.txt";

/// One violation, pointing at a workspace-relative file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (one of [`RULES`] or [`ALLOWLIST_RULE`]).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number; 0 for whole-file diagnostics.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// The offending source line (empty for whole-file diagnostics).
    pub snippet: String,
    /// How to fix or suppress it.
    pub help: &'static str,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        if self.line > 0 {
            writeln!(f, "  --> {}:{}", self.path, self.line)?;
            if !self.snippet.is_empty() {
                let n = format!("{}", self.line);
                writeln!(f, "  {} | {}", n, self.snippet.trim_end())?;
            }
        } else {
            writeln!(f, "  --> {}", self.path)?;
        }
        write!(f, "  = help: {}", self.help)
    }
}

/// A source file prepared for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes
    /// (`crates/core/src/scanner.rs`).
    pub rel_path: String,
    /// Raw lines, as read.
    pub raw: Vec<String>,
    /// Lines with comments removed and string-literal contents blanked
    /// (derived from the lexer) — for line-oriented checks and
    /// snippets.
    pub code: Vec<String>,
    /// The token stream — what pattern rules and the structural passes
    /// match against.
    pub tokens: Vec<lexer::Tok>,
    /// 0-based index of the first test line (the `#[cfg(test)]`
    /// attribute), or `usize::MAX` if the file has no test module.
    pub test_start: usize,
}

impl SourceFile {
    /// Prepare one file for linting: lex it whole (so raw strings,
    /// nested block comments and multi-line literals are handled
    /// correctly) and locate the trailing test module.
    pub fn parse(rel_path: &str, content: &str) -> SourceFile {
        let raw: Vec<String> = content.lines().map(str::to_owned).collect();
        let lexed = lexer::lex(content);
        let mut code = lexed.code;
        // The lexer counts a trailing newline as starting one more
        // (empty) line than `str::lines` reports; keep them aligned.
        code.truncate(raw.len().max(1));
        code.resize(raw.len(), String::new());
        let test_start = raw
            .iter()
            .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
            .unwrap_or(usize::MAX);
        SourceFile {
            rel_path: rel_path.to_owned(),
            raw,
            code,
            tokens: lexed.tokens,
            test_start,
        }
    }

    /// The crate directory name (`core` for `crates/core/src/...`), or
    /// `""` for paths outside `crates/`.
    pub fn krate(&self) -> &str {
        let mut parts = self.rel_path.split('/');
        match (parts.next(), parts.next()) {
            (Some("crates"), Some(c)) => c,
            _ => "",
        }
    }

    /// Is the 0-based line index inside the trailing test module?
    pub fn is_test(&self, idx: usize) -> bool {
        idx >= self.test_start
    }

    /// Is `rule` suppressed at the 0-based line index? Looks for
    /// `iw-lint: allow(<rule>)` on the line itself or the line above
    /// (comments included — suppressions live in comments).
    pub fn allowed(&self, idx: usize, rule: &str) -> bool {
        let marker = format!("iw-lint: allow({rule})");
        let here = self.raw.get(idx).is_some_and(|l| l.contains(&marker));
        let above = idx > 0 && self.raw[idx - 1].contains(&marker);
        here || above
    }
}

/// One entry of `crates/lint/allowlist.txt`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule the entry suppresses.
    pub rule: String,
    /// Workspace-relative file the entry applies to.
    pub path: String,
    /// Substring the offending raw line must contain.
    pub needle: String,
    /// 1-based line in `allowlist.txt` (for hygiene diagnostics).
    pub line: usize,
}

/// What to check and where. [`LintConfig::project`] encodes this
/// workspace's policy; tests build custom configs against fixtures.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates where `no-wall-clock` applies (crate dir names).
    pub wall_clock_crates: Vec<String>,
    /// Path prefixes where `no-unordered-iteration` applies.
    pub unordered_paths: Vec<String>,
    /// Crates exempt from `panic-budget` (experiment harnesses).
    pub panic_exempt_crates: Vec<String>,
    /// File-level suppressions (see `crates/lint/allowlist.txt`).
    pub allowlist: Vec<AllowEntry>,
    /// Workspace-relative path of the metrics manifest.
    pub manifest_path: String,
    /// Allowed metric-name families (`scan.` etc.); empty disables the
    /// family check.
    pub metric_families: Vec<String>,
    /// State machines to check.
    pub machines: Vec<machines::MachineSpec>,
    /// Declared concurrency intent (shared state, hot paths, channels).
    pub concurrency: concurrency::ConcurrencySpec,
}

impl LintConfig {
    /// The policy for this workspace.
    pub fn project() -> LintConfig {
        LintConfig {
            wall_clock_crates: ["core", "netsim", "hoststack", "wire", "telemetry"]
                .map(String::from)
                .to_vec(),
            unordered_paths: [
                "crates/core/src/results.rs",
                "crates/analysis/src/",
                "crates/telemetry/src/",
            ]
            .map(String::from)
            .to_vec(),
            panic_exempt_crates: ["bench"].map(String::from).to_vec(),
            allowlist: Vec::new(),
            manifest_path: "crates/telemetry/src/manifest.rs".to_owned(),
            metric_families: ["scan.", "shard.", "sim.", "trace."]
                .map(String::from)
                .to_vec(),
            machines: machines::project_machines(),
            concurrency: concurrency::project_concurrency(),
        }
    }
}

/// Read `crates/lint/allowlist.txt` under `root`, if present.
/// Format: one `<rule> <path> <substring>` per line; `#` comments.
pub fn load_allowlist(root: &Path) -> io::Result<Vec<AllowEntry>> {
    let path = root.join(ALLOWLIST_PATH);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let mut entries = Vec::new();
    for (idx, line) in fs::read_to_string(&path)?.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(needle)) => entries.push(AllowEntry {
                rule: rule.to_owned(),
                path: path.to_owned(),
                needle: needle.trim().to_owned(),
                line: idx + 1,
            }),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed allowlist line: {line:?}"),
                ))
            }
        }
    }
    Ok(entries)
}

/// Collect every `crates/*/src/**/*.rs` under `root`, sorted by path.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut |path| {
                let rel = rel_path(root, path);
                let content = fs::read_to_string(path)?;
                files.push(SourceFile::parse(&rel, &content));
                Ok(())
            })?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn walk_rs(dir: &Path, f: &mut dyn FnMut(&Path) -> io::Result<()>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, f)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            f(&path)?;
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The structural view of the workspace the concurrency rules run
/// against: extracted items and the approximate call graph.
#[derive(Debug)]
pub struct Analysis {
    /// Every fn in the workspace; `FnItem::file` indexes the file list
    /// the analysis was built from.
    pub fns: Vec<items::FnItem>,
    /// Every `static` item declaration.
    pub statics: Vec<items::StaticItem>,
    /// Call graph over `fns`.
    pub graph: callgraph::CallGraph,
}

/// Extract items from all files and build the call graph.
pub fn analyze(files: &[SourceFile]) -> Analysis {
    let mut fns = Vec::new();
    let mut statics = Vec::new();
    for (i, f) in files.iter().enumerate() {
        let fi = items::extract(i, &f.tokens);
        fns.extend(fi.fns);
        statics.extend(fi.statics);
    }
    let toks: Vec<&[lexer::Tok]> = files.iter().map(|f| f.tokens.as_slice()).collect();
    let paths: Vec<&str> = files.iter().map(|f| f.rel_path.as_str()).collect();
    let graph = callgraph::CallGraph::build(&fns, &toks, &paths);
    Analysis {
        fns,
        statics,
        graph,
    }
}

/// Lint the workspace at `root` with `config`. Returns the surviving
/// (unsuppressed) diagnostics, sorted by path, line, rule.
pub fn run(root: &Path, config: &LintConfig) -> io::Result<Vec<Diagnostic>> {
    let files = collect_workspace(root)?;
    Ok(check_files(&files, config))
}

/// Lint pre-collected files — the engine behind [`run`], used directly
/// by the fixture tests.
pub fn check_files(files: &[SourceFile], config: &LintConfig) -> Vec<Diagnostic> {
    let analysis = analyze(files);
    let mut diags = Vec::new();
    rules::no_wall_clock(files, config, &mut diags);
    rules::no_unordered_iteration(files, config, &mut diags);
    rules::metrics_manifest(files, config, &mut diags);
    rules::state_machine(files, config, &mut diags);
    rules::panic_budget(files, config, &mut diags);
    rules::rng_hygiene(files, config, &mut diags);
    rules::unsafe_forbidden(files, config, &mut diags);
    rules::shared_state_audit(files, config, &analysis, &mut diags);
    rules::hot_path_purity(files, config, &analysis, &mut diags);
    rules::channel_discipline(files, config, &analysis, &mut diags);
    allowlist_hygiene(files, config, &mut diags);
    diags.retain(|d| !suppressed(d, files, config));
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    diags
}

/// The `allowlist-hygiene` meta rule: every allowlist entry must still
/// suppress something plausible — known rule, existing path, and a
/// substring that still occurs in that file.
fn allowlist_hygiene(files: &[SourceFile], config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    let help = "remove the stale entry from crates/lint/allowlist.txt \
                (or fix its rule/path/substring)";
    for entry in &config.allowlist {
        let mut stale = |message: String| {
            diags.push(Diagnostic {
                rule: ALLOWLIST_RULE,
                path: ALLOWLIST_PATH.to_owned(),
                line: entry.line,
                message,
                snippet: format!("{} {} {}", entry.rule, entry.path, entry.needle),
                help,
            });
        };
        if !RULES.iter().any(|(n, _)| *n == entry.rule) {
            stale(format!(
                "allowlist entry names unknown rule `{}`",
                entry.rule
            ));
            continue;
        }
        let Some(file) = files.iter().find(|f| f.rel_path == entry.path) else {
            stale(format!(
                "allowlist entry path `{}` matches no workspace file",
                entry.path
            ));
            continue;
        };
        if !file.raw.iter().any(|l| l.contains(&entry.needle)) {
            stale(format!(
                "allowlist substring {:?} no longer occurs in `{}`",
                entry.needle, entry.path
            ));
        }
    }
}

fn suppressed(d: &Diagnostic, files: &[SourceFile], config: &LintConfig) -> bool {
    if d.line > 0 {
        if let Some(file) = files.iter().find(|f| f.rel_path == d.path) {
            if file.allowed(d.line - 1, d.rule) {
                return true;
            }
            if config.allowlist.iter().any(|a| {
                a.rule == d.rule && a.path == d.path && file.raw[d.line - 1].contains(&a.needle)
            }) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_blanks_comments_and_string_contents() {
        let f = SourceFile::parse("crates/x/src/lib.rs", "let x = 1; // Instant::now()\n");
        assert_eq!(f.code[0], "let x = 1; ");
        let f = SourceFile::parse("crates/x/src/lib.rs", r#"let p = ".unwrap()"; p.len()"#);
        assert_eq!(f.code[0], r#"let p = ""; p.len()"#);
        assert!(!f.tokens.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn parse_handles_char_literals_and_lifetimes() {
        let f = SourceFile::parse("crates/x/src/lib.rs", "if c == '\"' { x.unwrap() }");
        assert_eq!(f.code[0], "if c == ' ' { x.unwrap() }");
        let f = SourceFile::parse("crates/x/src/lib.rs", "fn f<'a>(s: &'a str) {}");
        assert!(f.tokens.iter().any(|t| t.kind == lexer::Kind::Lifetime));
    }

    #[test]
    fn code_lines_align_with_raw_lines() {
        for src in [
            "",
            "fn a() {}",
            "fn a() {}\n",
            "let s = \"multi\nline\";\nfn b() {}\n",
            "/* spans\ntwo lines */ fn c() {}",
        ] {
            let f = SourceFile::parse("crates/x/src/lib.rs", src);
            assert_eq!(f.code.len(), f.raw.len(), "misaligned for {src:?}");
        }
    }

    #[test]
    fn test_region_and_allows() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn a() {}\n// iw-lint: allow(panic-budget)\nfn b() {}\n#[cfg(test)]\nmod tests {}\n",
        );
        assert!(!f.is_test(0));
        assert!(f.is_test(3));
        assert!(f.is_test(4));
        assert!(f.allowed(1, "panic-budget"));
        assert!(f.allowed(2, "panic-budget")); // line above
        assert!(!f.allowed(0, "panic-budget"));
        assert!(!f.allowed(2, "rng-hygiene"));
        assert_eq!(f.krate(), "x");
    }

    #[test]
    fn rules_table_is_unique() {
        let names: Vec<&str> = RULES.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names.len(), sorted.len());
        assert_eq!(names.len(), 10);
        assert!(!names.contains(&ALLOWLIST_RULE));
    }

    #[test]
    fn allowlist_hygiene_flags_stale_entries() {
        let files = vec![SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn a() { b.unwrap(); }\n",
        )];
        let mut config = LintConfig {
            wall_clock_crates: Vec::new(),
            unordered_paths: Vec::new(),
            panic_exempt_crates: Vec::new(),
            allowlist: vec![
                AllowEntry {
                    rule: "panic-budget".into(),
                    path: "crates/x/src/lib.rs".into(),
                    needle: "b.unwrap()".into(),
                    line: 1,
                },
                AllowEntry {
                    rule: "no-such-rule".into(),
                    path: "crates/x/src/lib.rs".into(),
                    needle: "b.unwrap()".into(),
                    line: 2,
                },
                AllowEntry {
                    rule: "panic-budget".into(),
                    path: "crates/gone/src/lib.rs".into(),
                    needle: "b.unwrap()".into(),
                    line: 3,
                },
                AllowEntry {
                    rule: "panic-budget".into(),
                    path: "crates/x/src/lib.rs".into(),
                    needle: "vanished text".into(),
                    line: 4,
                },
            ],
            manifest_path: "none".into(),
            metric_families: Vec::new(),
            machines: Vec::new(),
            concurrency: concurrency::ConcurrencySpec::default(),
        };
        let mut diags = Vec::new();
        allowlist_hygiene(&files, &config, &mut diags);
        let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
        assert_eq!(lines, [2, 3, 4], "exactly the stale entries fire");
        assert!(diags.iter().all(|d| d.path == ALLOWLIST_PATH));
        assert!(diags[0].message.contains("unknown rule"));
        assert!(diags[1].message.contains("matches no workspace file"));
        assert!(diags[2].message.contains("no longer occurs"));
        // The live entry still suppresses.
        config.allowlist.truncate(1);
        let d = Diagnostic {
            rule: "panic-budget",
            path: "crates/x/src/lib.rs".into(),
            line: 1,
            message: String::new(),
            snippet: String::new(),
            help: "",
        };
        assert!(suppressed(&d, &files, &config));
    }
}
