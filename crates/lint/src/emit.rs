//! Machine-readable output: plain JSON for scripts and SARIF 2.1.0 for
//! code-scanning UIs. Hand-serialized — the lint crate stays
//! dependency-free by design.

use crate::{Diagnostic, RULES};

/// Escape a string for a JSON string literal (without the quotes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics as a single JSON object:
/// `{"count": N, "diagnostics": [{rule, path, line, message, help}…]}`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"count\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": \"{}\", ", esc(d.rule)));
        out.push_str(&format!("\"path\": \"{}\", ", esc(&d.path)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"message\": \"{}\", ", esc(&d.message)));
        out.push_str(&format!("\"help\": \"{}\"", esc(d.help)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Render diagnostics as a SARIF 2.1.0 log with one run. Every rule in
/// [`RULES`] is listed in the tool driver (so clean runs still publish
/// the rule set); `line == 0` diagnostics omit the region.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"iw-lint\",\n");
    out.push_str("          \"informationUri\": \"crates/lint\",\n");
    out.push_str("          \"rules\": [");
    for (i, (name, desc)) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            esc(name),
            esc(desc)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", esc(d.rule)));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            esc(&d.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{\"uri\": \"{}\"}}",
            esc(&d.path)
        ));
        if d.line > 0 {
            out.push_str(&format!(
                ",\n                \"region\": {{\"startLine\": {}}}\n",
                d.line
            ));
        } else {
            out.push('\n');
        }
        out.push_str("              }\n            }\n          ]\n        }");
    }
    if !diags.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                rule: "panic-budget",
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                message: "`.unwrap()` in library code".into(),
                snippet: "x.unwrap();".into(),
                help: "return an error",
            },
            Diagnostic {
                rule: "unsafe-forbidden",
                path: "crates/x/src/lib.rs".into(),
                line: 0,
                message: "crate `x` does not forbid unsafe code".into(),
                snippet: String::new(),
                help: "add the attribute",
            },
        ]
    }

    #[test]
    fn json_escapes_and_counts() {
        let out = to_json(&sample());
        assert!(out.contains("\"count\": 2"));
        assert!(out.contains("\\\"name\\\"") || !out.contains('\u{0}'));
        assert!(out.contains("`.unwrap()` in library code"));
        // Empty input is still a valid document.
        let empty = to_json(&[]);
        assert!(empty.contains("\"count\": 0"));
        assert!(empty.contains("\"diagnostics\": []"));
    }

    #[test]
    fn sarif_has_schema_rules_and_regions() {
        let out = to_sarif(&sample());
        assert!(out.contains("sarif-schema-2.1.0.json"));
        assert!(out.contains("\"name\": \"iw-lint\""));
        // All ten rules are published even when only two fire.
        for (name, _) in RULES {
            assert!(out.contains(&format!("\"id\": \"{name}\"")), "{name}");
        }
        assert!(out.contains("\"startLine\": 3"));
        // line == 0 → no region on the second result.
        let second = out.rsplit("\"ruleId\"").next().unwrap();
        assert!(!second.contains("startLine"));
    }

    #[test]
    fn escaping_is_json_safe() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
