//! Property-based tests: parse ∘ emit = id for every wire format, and
//! parsers never panic on arbitrary bytes.

use iw_wire::http::{Request, ResponseHead};
use iw_wire::icmp;
use iw_wire::ipv4::{self, Cidr, Ipv4Addr};
use iw_wire::tcp::{self, Flags, TcpOption};
use iw_wire::tls::handshake::{ClientHello, ServerFlight};
use iw_wire::tls::record::parse_stream;
use iw_wire::tls::CipherSuite;
use iw_wire::IpProtocol;
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from_u32)
}

fn arb_flags() -> impl Strategy<Value = Flags> {
    (0u16..0x40).prop_map(Flags::from_bits)
}

fn arb_options() -> impl Strategy<Value = Vec<TcpOption>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(TcpOption::Mss),
            (0u8..15).prop_map(TcpOption::WindowScale),
            Just(TcpOption::SackPermitted),
            (any::<u32>(), any::<u32>()).prop_map(|(a, b)| TcpOption::Timestamps(a, b)),
        ],
        0..3,
    )
}

proptest! {
    #[test]
    fn ipv4_round_trip(
        src in arb_addr(),
        dst in arb_addr(),
        ttl in 1u8..,
        ident in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let repr = ipv4::Repr {
            src_addr: src,
            dst_addr: dst,
            protocol: IpProtocol::Tcp,
            payload_len: payload.len(),
            ttl,
        };
        let buf = ipv4::build_datagram(&repr, ident, &payload);
        let packet = ipv4::Packet::new_checked(&buf[..]).unwrap();
        prop_assert!(packet.verify_checksum());
        prop_assert_eq!(ipv4::Repr::parse(&packet).unwrap(), repr);
        prop_assert_eq!(packet.payload(), &payload[..]);
    }

    #[test]
    fn ipv4_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(p) = ipv4::Packet::new_checked(&bytes[..]) {
            let _ = ipv4::Repr::parse(&p);
        }
    }

    #[test]
    fn tcp_round_trip(
        src in arb_addr(),
        dst in arb_addr(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in arb_flags(),
        window in any::<u16>(),
        options in arb_options(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let repr = tcp::Repr {
            src_port: sp, dst_port: dp, seq, ack, flags, window,
            options, payload,
        };
        let buf = repr.emit(src, dst);
        let packet = tcp::Packet::new_checked(&buf[..]).unwrap();
        prop_assert!(packet.verify_checksum(src, dst));
        let parsed = tcp::Repr::parse(&packet, src, dst).unwrap();
        prop_assert_eq!(parsed, repr);
    }

    #[test]
    fn tcp_parser_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        src in arb_addr(),
        dst in arb_addr(),
    ) {
        if let Ok(p) = tcp::Packet::new_checked(&bytes[..]) {
            let _ = tcp::Repr::parse(&p, src, dst);
            for o in p.options() { let _ = o; }
        }
    }

    #[test]
    fn tcp_seq_ordering_total(a in any::<u32>(), b in any::<u32>()) {
        // For any two distinct points closer than 2^31, exactly one of
        // lt(a,b) / lt(b,a) holds.
        prop_assume!(a != b);
        prop_assume!(a.wrapping_sub(b) != 1 << 31);
        prop_assert!(tcp::seq::lt(a, b) ^ tcp::seq::lt(b, a));
    }

    #[test]
    fn icmp_round_trip(ident in any::<u16>(), seqn in any::<u16>(), len in 0usize..256) {
        let msg = icmp::Message::EchoRequest { ident, seq: seqn, payload_len: len };
        prop_assert_eq!(icmp::Message::parse(&msg.emit()).unwrap(), msg);
    }

    #[test]
    fn icmp_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = icmp::Message::parse(&bytes);
    }

    #[test]
    fn cidr_first_last_contains(ip in any::<u32>(), len in 0u8..=32) {
        let c = Cidr::new(Ipv4Addr::from_u32(ip), len);
        prop_assert!(c.contains(Ipv4Addr::from_u32(c.first())));
        prop_assert!(c.contains(Ipv4Addr::from_u32(c.last())));
        prop_assert_eq!(u64::from(c.last() - c.first()) + 1, c.size());
    }

    #[test]
    fn http_request_round_trip(uri_tail in "[a-zA-Z0-9_/\\-]{0,64}", host in "[a-z0-9.\\-]{1,32}") {
        let uri = format!("/{uri_tail}");
        let req = Request::probe_get(&uri, &host);
        let parsed = Request::parse(&req.to_bytes()).unwrap();
        prop_assert_eq!(parsed.uri, uri);
        prop_assert_eq!(parsed.host, host);
    }

    #[test]
    fn http_response_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ResponseHead::parse(&bytes);
        let _ = Request::parse(&bytes);
    }

    #[test]
    fn client_hello_round_trip(random in any::<[u8; 32]>(), sni in proptest::option::of("[a-z0-9.\\-]{1,40}")) {
        let ch = ClientHello::probe(random, sni.as_deref());
        let parsed = ClientHello::parse(&ch.to_handshake_bytes()).unwrap();
        prop_assert_eq!(parsed.random, random);
        prop_assert_eq!(parsed.server_name(), sni.as_deref());
        prop_assert_eq!(parsed.cipher_suites.len(), 40);
    }

    #[test]
    fn server_flight_framing_is_parseable(
        nchain in 1usize..4,
        cert_len in 12usize..4000,
        ocsp in proptest::option::of(1usize..600),
        ske in proptest::option::of(1usize..400),
    ) {
        let flight = ServerFlight {
            cipher: CipherSuite::ECDHE_RSA_AES128_GCM,
            random: [3; 32],
            certificates: (0..nchain).map(|i| vec![i as u8; cert_len]).collect(),
            ocsp_response: ocsp.map(|n| vec![0xcc; n]),
            key_exchange: ske.map(|n| vec![0xdd; n]),
        };
        let bytes = flight.to_record_bytes();
        let (records, used) = parse_stream(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert!(!records.is_empty());
        let payload: usize = records.iter().map(|r| r.payload.len()).sum();
        prop_assert!(payload >= flight.chain_len());
    }

    #[test]
    fn tls_stream_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_stream(&bytes);
    }
}
