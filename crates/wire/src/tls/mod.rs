//! TLS 1.2 framing for the TLS probe module (paper §3.3).
//!
//! The probe completes the TCP handshake, sends a single ClientHello and
//! then just *counts bytes*: the server's flight (ServerHello +
//! Certificate + `CertificateStatus` + ServerKeyExchange + ServerHelloDone)
//! is what fills the initial window. The paper explicitly does **not**
//! inspect TLS length fields to detect "more data" (§3.3, last paragraph) —
//! it relies on the generic ACK-release check — so the client side here
//! only needs to *build* a realistic ClientHello and *recognize* alerts.
//! The server side (in `iw-hoststack`) needs to build the full flight.

pub mod cipher;
pub mod handshake;
pub mod record;

pub use cipher::{browser_union_ciphers, CipherSuite};
pub use handshake::{ClientHello, Extension, HandshakeType, ServerFlight};
pub use record::{ContentType, ProtocolVersion, Record};

/// TLS alert levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertLevel {
    /// Warning (1).
    Warning,
    /// Fatal (2).
    Fatal,
}

/// A TLS alert (the "error message" small responses in Table 2's NoData/IW1
/// rows come from these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alert {
    /// Severity.
    pub level: AlertLevel,
    /// Description code (40 = handshake_failure, 112 = unrecognized_name…).
    pub description: u8,
}

impl Alert {
    /// `handshake_failure(40)` — no common cipher suite.
    pub const HANDSHAKE_FAILURE: Alert = Alert {
        level: AlertLevel::Fatal,
        description: 40,
    };

    /// `unrecognized_name(112)` — server requires SNI it does not know.
    pub const UNRECOGNIZED_NAME: Alert = Alert {
        level: AlertLevel::Fatal,
        description: 112,
    };

    /// Serialize as the 2-byte alert body.
    pub fn to_bytes(self) -> [u8; 2] {
        let level = match self.level {
            AlertLevel::Warning => 1,
            AlertLevel::Fatal => 2,
        };
        [level, self.description]
    }

    /// Parse from an alert record body.
    pub fn parse(data: &[u8]) -> Option<Alert> {
        if data.len() < 2 {
            return None;
        }
        let level = match data[0] {
            1 => AlertLevel::Warning,
            2 => AlertLevel::Fatal,
            _ => return None,
        };
        Some(Alert {
            level,
            description: data[1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_round_trip() {
        let a = Alert::UNRECOGNIZED_NAME;
        assert_eq!(Alert::parse(&a.to_bytes()), Some(a));
        let b = Alert::HANDSHAKE_FAILURE;
        assert_eq!(Alert::parse(&b.to_bytes()), Some(b));
    }

    #[test]
    fn alert_rejects_garbage() {
        assert_eq!(Alert::parse(&[9, 9]), None);
        assert_eq!(Alert::parse(&[1]), None);
    }
}
