//! TLS record layer framing.

use crate::{Error, Result};

/// TLS record content types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentType {
    /// change_cipher_spec(20)
    ChangeCipherSpec,
    /// alert(21)
    Alert,
    /// handshake(22)
    Handshake,
    /// application_data(23)
    ApplicationData,
}

impl ContentType {
    fn from_u8(v: u8) -> Option<ContentType> {
        Some(match v {
            20 => ContentType::ChangeCipherSpec,
            21 => ContentType::Alert,
            22 => ContentType::Handshake,
            23 => ContentType::ApplicationData,
            _ => return None,
        })
    }

    fn to_u8(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
        }
    }
}

/// TLS protocol versions as (major, minor) wire pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProtocolVersion(pub u8, pub u8);

impl ProtocolVersion {
    /// TLS 1.0 — used as the record-layer version in ClientHello for
    /// maximum middlebox compatibility (what browsers do).
    pub const TLS10: ProtocolVersion = ProtocolVersion(3, 1);
    /// TLS 1.2.
    pub const TLS12: ProtocolVersion = ProtocolVersion(3, 3);
}

/// Maximum record payload: 2^14 plus the historic 2048-byte slack some
/// implementations emit.
pub const MAX_RECORD_LEN: usize = (1 << 14) + 2048;

/// A parsed TLS record (header + owned payload slice bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record<'a> {
    /// Content type.
    pub content_type: ContentType,
    /// Record-layer version.
    pub version: ProtocolVersion,
    /// Payload (fragment) bytes.
    pub payload: &'a [u8],
}

/// Record header length.
pub const HEADER_LEN: usize = 5;

impl<'a> Record<'a> {
    /// Parse one record from the front of `data`.
    ///
    /// Returns the record and the number of bytes consumed.
    /// `Error::Truncated` means "wait for more stream data".
    pub fn parse(data: &'a [u8]) -> Result<(Record<'a>, usize)> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let content_type = ContentType::from_u8(data[0]).ok_or(Error::TlsSyntax)?;
        let version = ProtocolVersion(data[1], data[2]);
        if version.0 != 3 {
            return Err(Error::TlsSyntax);
        }
        let len = u16::from_be_bytes([data[3], data[4]]) as usize;
        if len > MAX_RECORD_LEN {
            return Err(Error::Malformed);
        }
        if data.len() < HEADER_LEN + len {
            return Err(Error::Truncated);
        }
        Ok((
            Record {
                content_type,
                version,
                payload: &data[HEADER_LEN..HEADER_LEN + len],
            },
            HEADER_LEN + len,
        ))
    }

    /// Frame a payload as a single record.
    ///
    /// # Panics
    /// Panics if `payload` exceeds [`MAX_RECORD_LEN`]; callers must
    /// fragment (see [`emit_fragmented`]).
    pub fn emit(content_type: ContentType, version: ProtocolVersion, payload: &[u8]) -> Vec<u8> {
        assert!(payload.len() <= MAX_RECORD_LEN, "record payload too long");
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.push(content_type.to_u8());
        out.push(version.0);
        out.push(version.1);
        out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
        out.extend_from_slice(payload);
        out
    }
}

/// Frame a (possibly long) payload into as many records as needed, each at
/// most 2^14 bytes — how servers ship big certificate chains.
pub fn emit_fragmented(
    content_type: ContentType,
    version: ProtocolVersion,
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + HEADER_LEN);
    for chunk in payload.chunks(1 << 14) {
        out.extend_from_slice(&Record::emit(content_type, version, chunk));
    }
    if payload.is_empty() {
        out.extend_from_slice(&Record::emit(content_type, version, &[]));
    }
    out
}

/// Iterate all complete records at the front of a stream buffer, returning
/// the parsed records and total bytes consumed; a trailing partial record
/// is left unconsumed.
pub fn parse_stream(data: &[u8]) -> Result<(Vec<Record<'_>>, usize)> {
    let mut records = Vec::new();
    let mut offset = 0;
    while offset < data.len() {
        match Record::parse(&data[offset..]) {
            Ok((rec, used)) => {
                records.push(rec);
                offset += used;
            }
            Err(Error::Truncated) => break,
            Err(e) => return Err(e),
        }
    }
    Ok((records, offset))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip() {
        let buf = Record::emit(ContentType::Handshake, ProtocolVersion::TLS12, b"hello");
        let (rec, used) = Record::parse(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(rec.content_type, ContentType::Handshake);
        assert_eq!(rec.version, ProtocolVersion::TLS12);
        assert_eq!(rec.payload, b"hello");
    }

    #[test]
    fn partial_record_is_truncated() {
        let buf = Record::emit(ContentType::Alert, ProtocolVersion::TLS12, &[2, 40]);
        assert!(matches!(
            Record::parse(&buf[..buf.len() - 1]),
            Err(Error::Truncated)
        ));
    }

    #[test]
    fn bad_content_type_rejected() {
        let mut buf = Record::emit(ContentType::Alert, ProtocolVersion::TLS12, &[2, 40]);
        buf[0] = 99;
        assert!(matches!(Record::parse(&buf), Err(Error::TlsSyntax)));
    }

    #[test]
    fn fragmentation_and_stream_reassembly() {
        let payload = vec![0xabu8; (1 << 14) + 5000];
        let framed = emit_fragmented(ContentType::Handshake, ProtocolVersion::TLS12, &payload);
        let (records, used) = parse_stream(&framed).unwrap();
        assert_eq!(used, framed.len());
        assert_eq!(records.len(), 2);
        let total: usize = records.iter().map(|r| r.payload.len()).sum();
        assert_eq!(total, payload.len());
    }

    #[test]
    fn stream_stops_at_partial_tail() {
        let mut framed = Record::emit(ContentType::Handshake, ProtocolVersion::TLS12, b"abc");
        let first_len = framed.len();
        framed.extend_from_slice(&[22, 3, 3, 0, 10, 1, 2]); // incomplete second record
        let (records, used) = parse_stream(&framed).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(used, first_len);
    }

    #[test]
    fn empty_payload_still_emits_one_record() {
        let framed = emit_fragmented(ContentType::Handshake, ProtocolVersion::TLS12, &[]);
        let (records, _) = parse_stream(&framed).unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].payload.is_empty());
    }
}
