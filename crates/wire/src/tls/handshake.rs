//! TLS handshake messages: ClientHello emission (probe side) and parsing
//! (server side), plus the server's first flight builder used by
//! `iw-hoststack`.

use super::cipher::CipherSuite;
use super::record::{self, ContentType, ProtocolVersion};
use crate::{Error, Result};

/// Handshake message types we use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeType {
    /// client_hello(1)
    ClientHello,
    /// server_hello(2)
    ServerHello,
    /// certificate(11)
    Certificate,
    /// server_key_exchange(12)
    ServerKeyExchange,
    /// certificate_status(22) — OCSP stapling response.
    CertificateStatus,
    /// server_hello_done(14)
    ServerHelloDone,
}

impl HandshakeType {
    fn to_u8(self) -> u8 {
        match self {
            HandshakeType::ClientHello => 1,
            HandshakeType::ServerHello => 2,
            HandshakeType::Certificate => 11,
            HandshakeType::ServerKeyExchange => 12,
            HandshakeType::ServerHelloDone => 14,
            HandshakeType::CertificateStatus => 22,
        }
    }
}

/// A ClientHello extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Extension {
    /// server_name(0) with a single DNS hostname.
    ServerName(String),
    /// status_request(5) — request OCSP stapling ("to generate even more
    /// data, we included extensions for requesting OCSP stapling", §3.3).
    StatusRequest,
    /// supported_groups(10) with the standard browser curve list.
    SupportedGroups,
    /// ec_point_formats(11).
    EcPointFormats,
    /// signature_algorithms(13) with a browser-typical list.
    SignatureAlgorithms,
}

impl Extension {
    fn emit(&self, out: &mut Vec<u8>) {
        match self {
            Extension::ServerName(name) => {
                let host = name.as_bytes();
                let list_len = 3 + host.len();
                push_u16(out, 0);
                push_u16(out, (2 + list_len) as u16);
                push_u16(out, list_len as u16);
                out.push(0); // name_type host_name
                push_u16(out, host.len() as u16);
                out.extend_from_slice(host);
            }
            Extension::StatusRequest => {
                push_u16(out, 5);
                push_u16(out, 5);
                out.push(1); // OCSP
                push_u16(out, 0); // responder id list
                push_u16(out, 0); // request extensions
            }
            Extension::SupportedGroups => {
                // x25519, secp256r1, secp384r1, secp521r1
                let groups: [u16; 4] = [0x001d, 0x0017, 0x0018, 0x0019];
                push_u16(out, 10);
                push_u16(out, (2 + groups.len() * 2) as u16);
                push_u16(out, (groups.len() * 2) as u16);
                for g in groups {
                    push_u16(out, g);
                }
            }
            Extension::EcPointFormats => {
                push_u16(out, 11);
                push_u16(out, 2);
                out.push(1);
                out.push(0); // uncompressed
            }
            Extension::SignatureAlgorithms => {
                let algs: [u16; 6] = [0x0401, 0x0501, 0x0601, 0x0403, 0x0503, 0x0201];
                push_u16(out, 13);
                push_u16(out, (2 + algs.len() * 2) as u16);
                push_u16(out, (algs.len() * 2) as u16);
                for a in algs {
                    push_u16(out, a);
                }
            }
        }
    }
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn push_u24(out: &mut Vec<u8>, v: usize) {
    debug_assert!(v < 1 << 24);
    out.push((v >> 16) as u8);
    out.push((v >> 8) as u8);
    out.push(v as u8);
}

fn read_u16(data: &[u8], off: usize) -> Result<u16> {
    data.get(off..off + 2)
        .map(|s| u16::from_be_bytes([s[0], s[1]]))
        .ok_or(Error::Truncated)
}

/// A ClientHello message (the only handshake message the probe sends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// Client random (32 bytes). Deterministic in tests, seeded in scans.
    pub random: [u8; 32],
    /// Offered cipher suites in preference order.
    pub cipher_suites: Vec<CipherSuite>,
    /// Extensions.
    pub extensions: Vec<Extension>,
}

impl ClientHello {
    /// Build the scan ClientHello: the browser-union 40-suite list, OCSP
    /// status request, and the usual curve/sig-alg baggage. `server_name`
    /// is only set when the prober learned a hostname (e.g. from an HTTP
    /// redirect); plain IP enumeration has none — the cause of the SNI
    /// failures discussed in §4 ("Success rates").
    pub fn probe(random: [u8; 32], server_name: Option<&str>) -> ClientHello {
        let mut extensions = vec![
            Extension::StatusRequest,
            Extension::SupportedGroups,
            Extension::EcPointFormats,
            Extension::SignatureAlgorithms,
        ];
        if let Some(name) = server_name {
            extensions.insert(0, Extension::ServerName(name.to_string()));
        }
        ClientHello {
            random,
            cipher_suites: super::cipher::browser_union_ciphers(),
            extensions,
        }
    }

    /// Serialize into handshake-message bytes (without record framing).
    pub fn to_handshake_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(256);
        body.push(3);
        body.push(3); // client_version TLS 1.2
        body.extend_from_slice(&self.random);
        body.push(0); // empty session id
        push_u16(&mut body, (self.cipher_suites.len() * 2) as u16);
        for cs in &self.cipher_suites {
            push_u16(&mut body, cs.0);
        }
        body.push(1); // compression methods
        body.push(0); // null
        let mut ext = Vec::new();
        for e in &self.extensions {
            e.emit(&mut ext);
        }
        push_u16(&mut body, ext.len() as u16);
        body.extend_from_slice(&ext);

        let mut msg = Vec::with_capacity(body.len() + 4);
        msg.push(HandshakeType::ClientHello.to_u8());
        push_u24(&mut msg, body.len());
        msg.extend_from_slice(&body);
        msg
    }

    /// Serialize with record framing, ready for the TCP stream.
    pub fn to_record_bytes(&self) -> Vec<u8> {
        record::Record::emit(
            ContentType::Handshake,
            ProtocolVersion::TLS10,
            &self.to_handshake_bytes(),
        )
    }

    /// Parse a ClientHello from handshake-message bytes (server side).
    pub fn parse(msg: &[u8]) -> Result<ClientHello> {
        if msg.len() < 4 || msg[0] != 1 {
            return Err(Error::TlsSyntax);
        }
        let body_len = ((msg[1] as usize) << 16) | ((msg[2] as usize) << 8) | msg[3] as usize;
        let body = msg.get(4..4 + body_len).ok_or(Error::Truncated)?;
        if body.len() < 2 + 32 + 1 {
            return Err(Error::Truncated);
        }
        if body[0] != 3 {
            return Err(Error::Version);
        }
        let mut random = [0u8; 32];
        random.copy_from_slice(&body[2..34]);
        let mut off = 34;
        let sid_len = *body.get(off).ok_or(Error::Truncated)? as usize;
        off += 1 + sid_len;
        let cs_len = read_u16(body, off)? as usize;
        off += 2;
        if !cs_len.is_multiple_of(2) {
            return Err(Error::Malformed);
        }
        let cs_bytes = body.get(off..off + cs_len).ok_or(Error::Truncated)?;
        let cipher_suites = cs_bytes
            .chunks_exact(2)
            .map(|c| CipherSuite(u16::from_be_bytes([c[0], c[1]])))
            .collect();
        off += cs_len;
        let comp_len = *body.get(off).ok_or(Error::Truncated)? as usize;
        off += 1 + comp_len;
        let mut extensions = Vec::new();
        if off < body.len() {
            let ext_len = read_u16(body, off)? as usize;
            off += 2;
            let ext_end = off + ext_len;
            if ext_end > body.len() {
                return Err(Error::Truncated);
            }
            while off + 4 <= ext_end {
                let ty = read_u16(body, off)?;
                let len = read_u16(body, off + 2)? as usize;
                off += 4;
                let data = body.get(off..off + len).ok_or(Error::Truncated)?;
                off += len;
                match ty {
                    0
                        // server_name: skip list length (2), type (1), len (2)
                        if data.len() >= 5 => {
                            let name_len = u16::from_be_bytes([data[3], data[4]]) as usize;
                            let name = data.get(5..5 + name_len).ok_or(Error::Truncated)?;
                            let name =
                                std::str::from_utf8(name).map_err(|_| Error::TlsSyntax)?;
                            extensions.push(Extension::ServerName(name.to_string()));
                        }
                    5 => extensions.push(Extension::StatusRequest),
                    10 => extensions.push(Extension::SupportedGroups),
                    11 => extensions.push(Extension::EcPointFormats),
                    13 => extensions.push(Extension::SignatureAlgorithms),
                    _ => {}
                }
            }
        }
        Ok(ClientHello {
            random,
            cipher_suites,
            extensions,
        })
    }

    /// The SNI hostname, if offered.
    pub fn server_name(&self) -> Option<&str> {
        self.extensions.iter().find_map(|e| match e {
            Extension::ServerName(n) => Some(n.as_str()),
            _ => None,
        })
    }

    /// Whether OCSP stapling was requested.
    pub fn wants_ocsp(&self) -> bool {
        self.extensions
            .iter()
            .any(|e| matches!(e, Extension::StatusRequest))
    }
}

/// Description of the server's first flight, used by the simulated TLS
/// server to synthesize ServerHello + Certificate (+ CertificateStatus,
/// + ServerKeyExchange) + ServerHelloDone as one byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerFlight {
    /// Chosen cipher suite.
    pub cipher: CipherSuite,
    /// Server random.
    pub random: [u8; 32],
    /// Certificate chain: each certificate is an opaque DER blob; only
    /// lengths matter for the IW study, so the population model supplies
    /// deterministic filler bytes of calibrated lengths.
    pub certificates: Vec<Vec<u8>>,
    /// OCSP response to staple (CertificateStatus), if any.
    pub ocsp_response: Option<Vec<u8>>,
    /// ServerKeyExchange body for (EC)DHE suites, if applicable.
    pub key_exchange: Option<Vec<u8>>,
}

impl ServerFlight {
    /// Serialize the flight into TLS records ready for the TCP stream.
    pub fn to_record_bytes(&self) -> Vec<u8> {
        let mut hs = Vec::new();

        // ServerHello
        let mut sh = Vec::new();
        sh.push(3);
        sh.push(3);
        sh.extend_from_slice(&self.random);
        sh.push(0); // empty session id
        push_u16(&mut sh, self.cipher.0);
        sh.push(0); // null compression
        push_u16(&mut sh, 0); // no extensions
        append_handshake(&mut hs, HandshakeType::ServerHello, &sh);

        // Certificate
        let chain_len: usize = self.certificates.iter().map(|c| 3 + c.len()).sum();
        let mut cert = Vec::with_capacity(3 + chain_len);
        push_u24(&mut cert, chain_len);
        for c in &self.certificates {
            push_u24(&mut cert, c.len());
            cert.extend_from_slice(c);
        }
        append_handshake(&mut hs, HandshakeType::Certificate, &cert);

        // CertificateStatus (OCSP stapling)
        if let Some(ocsp) = &self.ocsp_response {
            let mut st = Vec::with_capacity(4 + ocsp.len());
            st.push(1); // status_type ocsp
            push_u24(&mut st, ocsp.len());
            st.extend_from_slice(ocsp);
            append_handshake(&mut hs, HandshakeType::CertificateStatus, &st);
        }

        // ServerKeyExchange
        if let Some(ke) = &self.key_exchange {
            append_handshake(&mut hs, HandshakeType::ServerKeyExchange, ke);
        }

        // ServerHelloDone
        append_handshake(&mut hs, HandshakeType::ServerHelloDone, &[]);

        record::emit_fragmented(ContentType::Handshake, ProtocolVersion::TLS12, &hs)
    }

    /// Total certificate-chain length in bytes (the Fig. 2 metric: the sum
    /// of DER lengths, what censys reports).
    pub fn chain_len(&self) -> usize {
        self.certificates.iter().map(|c| c.len()).sum()
    }
}

fn append_handshake(out: &mut Vec<u8>, ty: HandshakeType, body: &[u8]) {
    out.push(ty.to_u8());
    push_u24(out, body.len());
    out.extend_from_slice(body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tls::record::parse_stream;

    #[test]
    fn client_hello_round_trip() {
        let ch = ClientHello::probe([7u8; 32], Some("www.example.com"));
        let bytes = ch.to_handshake_bytes();
        let parsed = ClientHello::parse(&bytes).unwrap();
        assert_eq!(parsed.random, [7u8; 32]);
        assert_eq!(parsed.cipher_suites.len(), 40);
        assert_eq!(parsed.server_name(), Some("www.example.com"));
        assert!(parsed.wants_ocsp());
    }

    #[test]
    fn client_hello_without_sni() {
        let ch = ClientHello::probe([0u8; 32], None);
        let parsed = ClientHello::parse(&ch.to_handshake_bytes()).unwrap();
        assert_eq!(parsed.server_name(), None);
        assert!(parsed.wants_ocsp());
    }

    #[test]
    fn client_hello_record_framing() {
        let ch = ClientHello::probe([1u8; 32], None);
        let rec_bytes = ch.to_record_bytes();
        let (records, used) = parse_stream(&rec_bytes).unwrap();
        assert_eq!(used, rec_bytes.len());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].content_type, ContentType::Handshake);
        // Record-layer version is TLS 1.0 for compatibility.
        assert_eq!(records[0].version, ProtocolVersion::TLS10);
        let parsed = ClientHello::parse(records[0].payload).unwrap();
        assert_eq!(parsed.random, [1u8; 32]);
    }

    #[test]
    fn truncated_client_hello() {
        let ch = ClientHello::probe([1u8; 32], None);
        let bytes = ch.to_handshake_bytes();
        assert!(matches!(
            ClientHello::parse(&bytes[..bytes.len() - 3]),
            Err(Error::Truncated)
        ));
    }

    #[test]
    fn server_flight_length_accounting() {
        let flight = ServerFlight {
            cipher: CipherSuite::ECDHE_RSA_AES128_GCM,
            random: [9u8; 32],
            certificates: vec![vec![0xaa; 1200], vec![0xbb; 900]],
            ocsp_response: Some(vec![0xcc; 471]),
            key_exchange: Some(vec![0xdd; 300]),
        };
        assert_eq!(flight.chain_len(), 2100);
        let bytes = flight.to_record_bytes();
        let (records, used) = parse_stream(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        // Flight must comfortably exceed the chain (hello + framing + ocsp + ske).
        let payload: usize = records.iter().map(|r| r.payload.len()).sum();
        assert!(payload > 2100 + 471 + 300);
    }

    #[test]
    fn server_flight_big_chain_fragments() {
        let flight = ServerFlight {
            cipher: CipherSuite::RSA_AES128_CBC,
            random: [0u8; 32],
            certificates: vec![vec![0x11; 65_000]],
            ocsp_response: None,
            key_exchange: None,
        };
        let bytes = flight.to_record_bytes();
        let (records, _) = parse_stream(&bytes).unwrap();
        assert!(records.len() >= 4, "65 kB chain spans several records");
    }

    #[test]
    fn minimal_flight_parses() {
        // 36 B chain — the censys minimum from Fig. 2.
        let flight = ServerFlight {
            cipher: CipherSuite::RSA_RC4_SHA,
            random: [2u8; 32],
            certificates: vec![vec![0x22; 36]],
            ocsp_response: None,
            key_exchange: None,
        };
        let bytes = flight.to_record_bytes();
        let (records, used) = parse_stream(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(records.len(), 1);
    }
}
