//! Cipher-suite registry.
//!
//! The paper compiles "a list of 40 TLS ciphers announced by Safari,
//! Firefox, and Chrome, enriched with ciphers extracted from the censys.io
//! data" (§3.3). We reproduce that union: modern AEAD suites the three
//! browsers shared in 2017, the CBC suites they kept for compatibility,
//! and the long legacy tail (RC4, 3DES, plain-RSA) that censys still saw.

use core::fmt;

/// A TLS cipher suite identified by its IANA 16-bit code point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CipherSuite(pub u16);

impl CipherSuite {
    /// TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256 — the workhorse of 2017.
    pub const ECDHE_RSA_AES128_GCM: CipherSuite = CipherSuite(0xc02f);
    /// TLS_RSA_WITH_AES_128_CBC_SHA — the universal legacy fallback.
    pub const RSA_AES128_CBC: CipherSuite = CipherSuite(0x002f);
    /// TLS_RSA_WITH_RC4_128_SHA — ancient, censys-only tier.
    pub const RSA_RC4_SHA: CipherSuite = CipherSuite(0x0005);

    /// Whether the suite's key exchange sends a ServerKeyExchange message
    /// ((EC)DHE); static-RSA suites do not. This changes the byte count of
    /// the server's first flight, which the IW estimate feeds on.
    pub fn has_server_key_exchange(self) -> bool {
        // ECDHE suites are 0xc0xx in this registry; DHE suites used here
        // are 0x0033/0x0039/0x009e/0x009f/0x0016.
        matches!(
            self.0,
            0xc000..=0xc0ff | 0x0033 | 0x0039 | 0x009e | 0x009f | 0x0016
        )
    }
}

impl fmt::Display for CipherSuite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04x}", self.0)
    }
}

/// The 40-suite browser-union offer list (§3.3), in preference order.
pub fn browser_union_ciphers() -> Vec<CipherSuite> {
    const CODES: [u16; 40] = [
        // Modern AEAD tier (Chrome/Firefox/Safari 2017 defaults).
        0xc02c, // ECDHE-ECDSA-AES256-GCM-SHA384
        0xc02b, // ECDHE-ECDSA-AES128-GCM-SHA256
        0xc030, // ECDHE-RSA-AES256-GCM-SHA384
        0xc02f, // ECDHE-RSA-AES128-GCM-SHA256
        0xcca9, // ECDHE-ECDSA-CHACHA20-POLY1305
        0xcca8, // ECDHE-RSA-CHACHA20-POLY1305
        0x009f, // DHE-RSA-AES256-GCM-SHA384
        0x009e, // DHE-RSA-AES128-GCM-SHA256
        // CBC-with-ECDHE compatibility tier.
        0xc024, // ECDHE-ECDSA-AES256-SHA384
        0xc023, // ECDHE-ECDSA-AES128-SHA256
        0xc028, // ECDHE-RSA-AES256-SHA384
        0xc027, // ECDHE-RSA-AES128-SHA256
        0xc00a, // ECDHE-ECDSA-AES256-SHA
        0xc009, // ECDHE-ECDSA-AES128-SHA
        0xc014, // ECDHE-RSA-AES256-SHA
        0xc013, // ECDHE-RSA-AES128-SHA
        // Static RSA tier (censys long tail).
        0x009d, // RSA-AES256-GCM-SHA384
        0x009c, // RSA-AES128-GCM-SHA256
        0x003d, // RSA-AES256-SHA256
        0x003c, // RSA-AES128-SHA256
        0x0035, // RSA-AES256-SHA
        0x002f, // RSA-AES128-SHA
        // DHE CBC tier.
        0x0039, // DHE-RSA-AES256-SHA
        0x0033, // DHE-RSA-AES128-SHA
        0x0067, // DHE-RSA-AES128-SHA256
        0x006b, // DHE-RSA-AES256-SHA256
        // Camellia (seen in censys, offered by Firefox long ago).
        0x0041, // RSA-CAMELLIA128-SHA
        0x0084, // RSA-CAMELLIA256-SHA
        0x0045, // DHE-RSA-CAMELLIA128-SHA
        0x0088, // DHE-RSA-CAMELLIA256-SHA
        // SEED / legacy national suites from censys.
        0x0096, // RSA-SEED-SHA
        // 3DES compatibility.
        0xc012, // ECDHE-RSA-3DES-EDE-CBC-SHA
        0x0016, // DHE-RSA-3DES-EDE-CBC-SHA
        0x000a, // RSA-3DES-EDE-CBC-SHA
        // RC4 (censys tail; browsers had dropped it, servers had not).
        0xc011, // ECDHE-RSA-RC4-SHA
        0x0005, // RSA-RC4-SHA
        0x0004, // RSA-RC4-MD5
        // Export-grade / null-adjacent relics that still appear in scans.
        0x0009, // RSA-DES-CBC-SHA
        0x0015, // DHE-RSA-DES-CBC-SHA
        0x0012, // DHE-DSS-DES-CBC-SHA
    ];
    CODES.into_iter().map(CipherSuite).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_forty_unique_suites() {
        let list = browser_union_ciphers();
        assert_eq!(list.len(), 40, "the paper compiles a 40-cipher list");
        let set: HashSet<_> = list.iter().collect();
        assert_eq!(set.len(), 40, "no duplicates");
    }

    #[test]
    fn modern_aead_preferred() {
        let list = browser_union_ciphers();
        assert_eq!(list[0], CipherSuite(0xc02c));
        assert!(list.contains(&CipherSuite::ECDHE_RSA_AES128_GCM));
        assert!(list.contains(&CipherSuite::RSA_AES128_CBC));
        assert!(list.contains(&CipherSuite::RSA_RC4_SHA));
    }

    #[test]
    fn server_key_exchange_classification() {
        assert!(CipherSuite::ECDHE_RSA_AES128_GCM.has_server_key_exchange());
        assert!(CipherSuite(0x009e).has_server_key_exchange());
        assert!(!CipherSuite::RSA_AES128_CBC.has_server_key_exchange());
        assert!(!CipherSuite::RSA_RC4_SHA.has_server_key_exchange());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(CipherSuite(0xc02f).to_string(), "0xc02f");
    }
}
