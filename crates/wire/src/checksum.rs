//! RFC 1071 Internet checksum, shared by IPv4, TCP and ICMP.

use crate::ipv4::Ipv4Addr;

/// Incremental ones-complement sum accumulator.
///
/// Fold order does not matter for the ones-complement sum, so we accumulate
/// into a `u32` and defer carries; `finish` folds the carries and
/// complements.
#[derive(Debug, Default, Clone, Copy)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a byte slice. Odd-length slices are padded with a zero byte as
    /// RFC 1071 specifies.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Add a single big-endian 16-bit word.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Add the TCP/UDP pseudo-header for `proto` over IPv4.
    pub fn add_pseudo_header(&mut self, src: Ipv4Addr, dst: Ipv4Addr, proto: u8, len: u16) {
        self.add_bytes(&src.octets());
        self.add_bytes(&dst.octets());
        self.add_u16(u16::from(proto));
        self.add_u16(len);
    }

    /// Fold carries and return the ones-complement checksum.
    pub fn finish(self) -> u16 {
        let mut sum = self.sum;
        while sum > 0xffff {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot checksum over a contiguous buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verify a buffer whose checksum field is already in place: the folded sum
/// over the whole buffer must be zero (i.e. `finish()` returns 0xffff
/// complemented to 0... we check the pre-complement form directly).
pub fn verify(data: &[u8]) -> bool {
    // When the checksum field is included, the ones-complement sum of the
    // buffer is 0xffff, so `checksum` (which complements) returns 0.
    checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: {00 01 f2 03 f4 f5 f6 f7} -> sum 0xddf2,
        // checksum = !0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        let even = [0xab, 0x00];
        let odd = [0xab];
        assert_eq!(checksum(&even), checksum(&odd));
    }

    #[test]
    fn verify_round_trip() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x14, 0x12, 0x34, 0x00, 0x00, 0x40, 0x06, 0, 0,
        ];
        let c = checksum(&data);
        data[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_matches_manual() {
        let mut a = Checksum::new();
        a.add_pseudo_header(
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(198, 51, 100, 2),
            6,
            20,
        );
        let mut b = Checksum::new();
        b.add_bytes(&[192, 0, 2, 1, 198, 51, 100, 2, 0, 6, 0, 20]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn all_zero_is_ffff() {
        assert_eq!(checksum(&[0u8; 8]), 0xffff);
    }
}
