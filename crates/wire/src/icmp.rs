//! ICMPv4 messages used by the path-MTU discovery scan (paper footnote 1).
//!
//! The RFC 1191 probe sends DF-flagged echo requests of decreasing size and
//! listens for *Fragmentation Needed* errors carrying the next-hop MTU, so
//! we implement Echo Request/Reply and Destination Unreachable.

use crate::checksum;
use crate::{Error, Result};

/// ICMP message types we handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// Echo Request (type 8): identifier, sequence, payload length.
    EchoRequest {
        /// Identifier to match replies to requests.
        ident: u16,
        /// Sequence number within the probe train.
        seq: u16,
        /// Number of payload bytes (contents are zeros on the wire).
        payload_len: usize,
    },
    /// Echo Reply (type 0).
    EchoReply {
        /// Identifier echoed from the request.
        ident: u16,
        /// Sequence echoed from the request.
        seq: u16,
        /// Echoed payload length.
        payload_len: usize,
    },
    /// Destination Unreachable / Fragmentation Needed (type 3 code 4)
    /// carrying the next-hop MTU per RFC 1191.
    FragNeeded {
        /// Next-hop MTU reported by the constricting router.
        mtu: u16,
    },
    /// Destination Unreachable with any other code.
    DstUnreachable {
        /// The unreachable code (0 = net, 1 = host, 3 = port, ...).
        code: u8,
    },
    /// Source Quench (type 4 code 0): a router or host asking the sender
    /// to slow down. Deprecated on the real internet (RFC 6633) but alive
    /// as a rate-limiting signature, so the harvest classifies it.
    SourceQuench,
}

/// Fixed ICMP header length.
pub const HEADER_LEN: usize = 8;

impl Message {
    /// Emitted length in bytes.
    pub fn buffer_len(&self) -> usize {
        match self {
            Message::EchoRequest { payload_len, .. } | Message::EchoReply { payload_len, .. } => {
                HEADER_LEN + payload_len
            }
            // Errors carry 8 bytes of the offending datagram in real life;
            // we emit the header only (parsers must not rely on the quote).
            Message::FragNeeded { .. } | Message::DstUnreachable { .. } | Message::SourceQuench => {
                HEADER_LEN
            }
        }
    }

    /// Emit the message into a fresh buffer, checksummed.
    pub fn emit(&self) -> Vec<u8> {
        let mut buf = vec![0u8; self.buffer_len()];
        self.emit_into(&mut buf);
        buf
    }

    /// Emit into a zeroed buffer of exactly [`Self::buffer_len`] bytes
    /// (the pooled hot path; [`Self::emit`] wraps this).
    pub fn emit_into(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), self.buffer_len());
        match self {
            Message::EchoRequest { ident, seq, .. } => {
                buf[0] = 8;
                buf[4..6].copy_from_slice(&ident.to_be_bytes());
                buf[6..8].copy_from_slice(&seq.to_be_bytes());
            }
            Message::EchoReply { ident, seq, .. } => {
                buf[0] = 0;
                buf[4..6].copy_from_slice(&ident.to_be_bytes());
                buf[6..8].copy_from_slice(&seq.to_be_bytes());
            }
            Message::FragNeeded { mtu } => {
                buf[0] = 3;
                buf[1] = 4;
                buf[6..8].copy_from_slice(&mtu.to_be_bytes());
            }
            Message::DstUnreachable { code } => {
                buf[0] = 3;
                buf[1] = *code;
            }
            Message::SourceQuench => {
                buf[0] = 4;
            }
        }
        let sum = checksum::checksum(buf);
        buf[2..4].copy_from_slice(&sum.to_be_bytes());
    }

    /// Parse an ICMP message from an IPv4 payload.
    pub fn parse(data: &[u8]) -> Result<Message> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if checksum::checksum(data) != 0 {
            return Err(Error::Checksum);
        }
        let ty = data[0];
        let code = data[1];
        match (ty, code) {
            (8, 0) => Ok(Message::EchoRequest {
                ident: u16::from_be_bytes([data[4], data[5]]),
                seq: u16::from_be_bytes([data[6], data[7]]),
                payload_len: data.len() - HEADER_LEN,
            }),
            (0, 0) => Ok(Message::EchoReply {
                ident: u16::from_be_bytes([data[4], data[5]]),
                seq: u16::from_be_bytes([data[6], data[7]]),
                payload_len: data.len() - HEADER_LEN,
            }),
            (3, 4) => Ok(Message::FragNeeded {
                mtu: u16::from_be_bytes([data[6], data[7]]),
            }),
            (3, c) => Ok(Message::DstUnreachable { code: c }),
            (4, 0) => Ok(Message::SourceQuench),
            _ => Err(Error::Malformed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let msg = Message::EchoRequest {
            ident: 0xbeef,
            seq: 3,
            payload_len: 100,
        };
        let buf = msg.emit();
        assert_eq!(buf.len(), 108);
        assert_eq!(Message::parse(&buf).unwrap(), msg);
    }

    #[test]
    fn frag_needed_round_trip() {
        let msg = Message::FragNeeded { mtu: 1336 };
        let buf = msg.emit();
        assert_eq!(Message::parse(&buf).unwrap(), msg);
    }

    #[test]
    fn unreachable_round_trip() {
        let msg = Message::DstUnreachable { code: 1 };
        assert_eq!(Message::parse(&msg.emit()).unwrap(), msg);
    }

    #[test]
    fn source_quench_round_trip() {
        let msg = Message::SourceQuench;
        let buf = msg.emit();
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(buf[0], 4);
        assert_eq!(Message::parse(&buf).unwrap(), msg);
        // A non-zero code is not a source quench.
        let mut bad = vec![4u8, 1, 0, 0, 0, 0, 0, 0];
        let s = checksum::checksum(&bad);
        bad[2..4].copy_from_slice(&s.to_be_bytes());
        assert_eq!(Message::parse(&bad).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn checksum_enforced() {
        let mut buf = Message::FragNeeded { mtu: 1500 }.emit();
        buf[7] ^= 1;
        assert_eq!(Message::parse(&buf).unwrap_err(), Error::Checksum);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(Message::parse(&[8, 0, 0]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = vec![13u8, 0, 0, 0, 0, 0, 0, 0];
        let s = checksum::checksum(&buf);
        buf[2..4].copy_from_slice(&s.to_be_bytes());
        assert_eq!(Message::parse(&buf).unwrap_err(), Error::Malformed);
    }
}
