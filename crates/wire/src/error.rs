//! Error type shared by all parsers in this crate.

use core::fmt;

/// Result alias for wire-format operations.
pub type Result<T> = core::result::Result<T, Error>;

/// A parsing or emission failure.
///
/// Parsers in this crate never panic on hostile input; every malformed
/// datagram maps to one of these variants so the scanner can count it as a
/// protocol `Error` outcome instead of crashing mid-scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the fixed header, or shorter than a
    /// length field claims.
    Truncated,
    /// A field holds a value the protocol forbids (e.g. IPv4 IHL < 5,
    /// TCP data offset < 5, TLS record length > 2^14 + 2048).
    Malformed,
    /// A checksum did not verify.
    Checksum,
    /// The version field is not the one this parser understands.
    Version,
    /// The provided buffer is too small to emit the representation into.
    BufferTooSmall,
    /// An HTTP message could not be parsed (bad status line, header syntax).
    HttpSyntax,
    /// A TLS record or handshake message is structurally invalid.
    TlsSyntax,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "buffer truncated"),
            Error::Malformed => write!(f, "malformed field"),
            Error::Checksum => write!(f, "checksum mismatch"),
            Error::Version => write!(f, "unsupported protocol version"),
            Error::BufferTooSmall => write!(f, "emit buffer too small"),
            Error::HttpSyntax => write!(f, "HTTP syntax error"),
            Error::TlsSyntax => write!(f, "TLS syntax error"),
        }
    }
}

impl std::error::Error for Error {}
