//! TCP segments and the options the IW methodology manipulates.
//!
//! The scanner advertises a tiny MSS (64 B) and a large window in its SYN,
//! deliberately omits SACK-permitted (to keep server tail-loss probes off),
//! and later shrinks its window to 2·MSS for the exhaustion check — all of
//! that is plain header/option manipulation implemented here.

use crate::ipv4::{self, Ipv4Addr};
use crate::{Error, Result};
use core::fmt;

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;
/// Maximum TCP header length (data offset 15).
pub const MAX_HEADER_LEN: usize = 60;

mod field {
    use core::ops::Range;
    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const SEQ_NUM: Range<usize> = 4..8;
    pub const ACK_NUM: Range<usize> = 8..12;
    pub const FLAGS: Range<usize> = 12..14;
    pub const WIN_SIZE: Range<usize> = 14..16;
    pub const CHECKSUM: Range<usize> = 16..18;
    pub const URGENT: Range<usize> = 18..20;
}

/// Tiny local stand-in for the `bitflags` crate (kept dependency-free).
macro_rules! bitflags_like {
    (
        $(#[$meta:meta])*
        pub struct $name:ident : $ty:ty {
            $(const $flag:ident = $value:expr;)+
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
        pub struct $name($ty);

        impl $name {
            $(
                #[allow(missing_docs)]
                pub const $flag: $name = $name($value);
            )+

            /// The empty flag set.
            pub const fn empty() -> Self { $name(0) }
            /// Raw bits.
            pub const fn bits(self) -> $ty { self.0 }
            /// Reconstruct from raw bits (unknown bits are kept).
            pub const fn from_bits(bits: $ty) -> Self { $name(bits) }
            /// Whether every bit of `other` is set in `self`.
            pub const fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }
            /// Whether any bit of `other` is set in `self`.
            pub const fn intersects(self, other: $name) -> bool {
                self.0 & other.0 != 0
            }
        }

        impl core::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { $name(self.0 | rhs.0) }
        }
        impl core::ops::BitOrAssign for $name {
            fn bitor_assign(&mut self, rhs: $name) { self.0 |= rhs.0; }
        }
        impl core::ops::BitAnd for $name {
            type Output = $name;
            fn bitand(self, rhs: $name) -> $name { $name(self.0 & rhs.0) }
        }
    };
}

bitflags_like! {
    /// TCP flag bits (lower 9 bits of the flags/offset word).
    pub struct Flags: u16 {
        const FIN = 0x001;
        const SYN = 0x002;
        const RST = 0x004;
        const PSH = 0x008;
        const ACK = 0x010;
        const URG = 0x020;
        const ECE = 0x040;
        const CWR = 0x080;
        const NS  = 0x100;
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Flags::SYN, "SYN"),
            (Flags::FIN, "FIN"),
            (Flags::RST, "RST"),
            (Flags::PSH, "PSH"),
            (Flags::ACK, "ACK"),
            (Flags::URG, "URG"),
        ];
        let mut first = true;
        for (flag, name) in names {
            if self.contains(flag) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// A parsed TCP option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpOption {
    /// End-of-option-list marker.
    EndOfList,
    /// Padding.
    Nop,
    /// Maximum segment size (SYN only).
    Mss(u16),
    /// Window scale shift (SYN only).
    WindowScale(u8),
    /// SACK permitted (SYN only).
    SackPermitted,
    /// Timestamps (value, echo reply).
    Timestamps(u32, u32),
    /// Anything else: (kind, length) — contents ignored.
    Unknown(u8, u8),
}

impl TcpOption {
    /// Emitted length of this option in bytes.
    pub fn buffer_len(&self) -> usize {
        match self {
            TcpOption::EndOfList | TcpOption::Nop => 1,
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Timestamps(..) => 10,
            TcpOption::Unknown(_, len) => *len as usize,
        }
    }

    fn emit(&self, buf: &mut [u8]) -> usize {
        match self {
            TcpOption::EndOfList => {
                buf[0] = 0;
                1
            }
            TcpOption::Nop => {
                buf[0] = 1;
                1
            }
            TcpOption::Mss(mss) => {
                buf[0] = 2;
                buf[1] = 4;
                buf[2..4].copy_from_slice(&mss.to_be_bytes());
                4
            }
            TcpOption::WindowScale(shift) => {
                buf[0] = 3;
                buf[1] = 3;
                buf[2] = *shift;
                3
            }
            TcpOption::SackPermitted => {
                buf[0] = 4;
                buf[1] = 2;
                2
            }
            TcpOption::Timestamps(val, ecr) => {
                buf[0] = 8;
                buf[1] = 10;
                buf[2..6].copy_from_slice(&val.to_be_bytes());
                buf[6..10].copy_from_slice(&ecr.to_be_bytes());
                10
            }
            TcpOption::Unknown(kind, len) => {
                buf[0] = *kind;
                buf[1] = *len;
                *len as usize
            }
        }
    }
}

/// Iterate the options region of a TCP header, tolerant of unknown kinds.
pub struct OptionsIter<'a> {
    data: &'a [u8],
}

impl<'a> Iterator for OptionsIter<'a> {
    type Item = Result<TcpOption>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.data.is_empty() {
            return None;
        }
        let kind = self.data[0];
        match kind {
            0 => {
                self.data = &[];
                Some(Ok(TcpOption::EndOfList))
            }
            1 => {
                self.data = &self.data[1..];
                Some(Ok(TcpOption::Nop))
            }
            _ => {
                if self.data.len() < 2 {
                    self.data = &[];
                    return Some(Err(Error::Truncated));
                }
                let len = self.data[1] as usize;
                if len < 2 || len > self.data.len() {
                    self.data = &[];
                    return Some(Err(Error::Malformed));
                }
                let body = &self.data[..len];
                self.data = &self.data[len..];
                let opt = match (kind, len) {
                    (2, 4) => TcpOption::Mss(u16::from_be_bytes([body[2], body[3]])),
                    (3, 3) => TcpOption::WindowScale(body[2]),
                    (4, 2) => TcpOption::SackPermitted,
                    (8, 10) => TcpOption::Timestamps(be32(&body[2..6]), be32(&body[6..10])),
                    _ => TcpOption::Unknown(kind, len as u8),
                };
                Some(Ok(opt))
            }
        }
    }
}

/// Read a big-endian `u16` from the first two bytes of a field slice
/// (length already validated by `check_len`/the options iterator).
fn be16(b: &[u8]) -> u16 {
    u16::from_be_bytes([b[0], b[1]])
}

/// Read a big-endian `u32` from the first four bytes of a field slice.
fn be32(b: &[u8]) -> u32 {
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

/// A read/write view of a TCP segment (the IPv4 payload).
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without checks.
    pub const fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wrap and validate lengths (fixed header present, data offset sane
    /// and inside the buffer).
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let header_len = self.header_len() as usize;
        if header_len < HEADER_LEN {
            return Err(Error::Malformed);
        }
        if data.len() < header_len {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        be16(&self.buffer.as_ref()[field::SRC_PORT])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        be16(&self.buffer.as_ref()[field::DST_PORT])
    }

    /// Sequence number.
    pub fn seq_number(&self) -> u32 {
        be32(&self.buffer.as_ref()[field::SEQ_NUM])
    }

    /// Acknowledgment number.
    pub fn ack_number(&self) -> u32 {
        be32(&self.buffer.as_ref()[field::ACK_NUM])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[field::FLAGS.start] >> 4) * 4
    }

    /// Flag bits.
    pub fn flags(&self) -> Flags {
        let raw = be16(&self.buffer.as_ref()[field::FLAGS]);
        Flags::from_bits(raw & 0x01ff)
    }

    /// Advertised receive window (unscaled).
    pub fn window(&self) -> u16 {
        be16(&self.buffer.as_ref()[field::WIN_SIZE])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        be16(&self.buffer.as_ref()[field::CHECKSUM])
    }

    /// Iterate over the options region.
    pub fn options(&self) -> OptionsIter<'_> {
        let hlen = self.header_len() as usize;
        OptionsIter {
            data: &self.buffer.as_ref()[HEADER_LEN..hlen],
        }
    }

    /// Payload bytes after the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len() as usize..]
    }

    /// Verify the checksum given the IPv4 pseudo-header addresses.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        ipv4::l4_checksum(src, dst, 6, self.buffer.as_ref()) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Set destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Set sequence number.
    pub fn set_seq_number(&mut self, seq: u32) {
        self.buffer.as_mut()[field::SEQ_NUM].copy_from_slice(&seq.to_be_bytes());
    }

    /// Set acknowledgment number.
    pub fn set_ack_number(&mut self, ack: u32) {
        self.buffer.as_mut()[field::ACK_NUM].copy_from_slice(&ack.to_be_bytes());
    }

    /// Set data offset (header length in bytes) and flags together.
    pub fn set_header_len_flags(&mut self, header_len: u8, flags: Flags) {
        debug_assert!(header_len.is_multiple_of(4) && (20..=60).contains(&header_len));
        let word = (u16::from(header_len / 4) << 12) | flags.bits();
        self.buffer.as_mut()[field::FLAGS].copy_from_slice(&word.to_be_bytes());
    }

    /// Set advertised window.
    pub fn set_window(&mut self, win: u16) {
        self.buffer.as_mut()[field::WIN_SIZE].copy_from_slice(&win.to_be_bytes());
    }

    /// Zero the urgent pointer.
    pub fn set_urgent(&mut self, v: u16) {
        self.buffer.as_mut()[field::URGENT].copy_from_slice(&v.to_be_bytes());
    }

    /// Compute and store the checksum (pseudo-header + segment).
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let sum = ipv4::l4_checksum(src, dst, 6, self.buffer.as_ref());
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }
}

/// High-level representation of a TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (meaningful when ACK flag set).
    pub ack: u32,
    /// Flags.
    pub flags: Flags,
    /// Advertised window.
    pub window: u16,
    /// Options, in emission order.
    pub options: Vec<TcpOption>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Repr {
    /// A bare segment with no options and no payload.
    pub fn bare(
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: Flags,
        window: u16,
    ) -> Self {
        Repr {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            options: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Parse a segment; checksum is verified against the pseudo-header.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>, src: Ipv4Addr, dst: Ipv4Addr) -> Result<Repr> {
        if !packet.verify_checksum(src, dst) {
            return Err(Error::Checksum);
        }
        let mut options = Vec::new();
        for opt in packet.options() {
            match opt? {
                TcpOption::EndOfList => break,
                TcpOption::Nop => {}
                o => options.push(o),
            }
        }
        Ok(Repr {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            seq: packet.seq_number(),
            ack: packet.ack_number(),
            flags: packet.flags(),
            window: packet.window(),
            options,
            payload: packet.payload().to_vec(),
        })
    }

    /// Length of the options region after padding to a 4-byte boundary.
    pub fn options_len(&self) -> usize {
        let raw: usize = self.options.iter().map(|o| o.buffer_len()).sum();
        (raw + 3) & !3
    }

    /// Total emitted segment length.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.options_len() + self.payload.len()
    }

    /// Emit into a fresh buffer and checksum it.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut buf = vec![0u8; self.buffer_len()];
        self.emit_into(src, dst, &mut buf);
        buf
    }

    /// Emit into a zeroed buffer of exactly [`Self::buffer_len`] bytes,
    /// checksummed — the pooled hot path; [`Self::emit`] wraps this.
    pub fn emit_into(&self, src: Ipv4Addr, dst: Ipv4Addr, buf: &mut [u8]) {
        let header_len = HEADER_LEN + self.options_len();
        debug_assert!(header_len <= MAX_HEADER_LEN, "too many TCP options");
        debug_assert_eq!(buf.len(), self.buffer_len());
        {
            let mut cursor = HEADER_LEN;
            for opt in &self.options {
                cursor += opt.emit(&mut buf[cursor..]);
            }
            // Remaining bytes up to header_len stay zero = EndOfList padding.
        }
        buf[header_len..].copy_from_slice(&self.payload);
        let mut packet = Packet::new_unchecked(buf);
        packet.set_src_port(self.src_port);
        packet.set_dst_port(self.dst_port);
        packet.set_seq_number(self.seq);
        packet.set_ack_number(self.ack);
        packet.set_header_len_flags(header_len as u8, self.flags);
        packet.set_window(self.window);
        packet.set_urgent(0);
        packet.fill_checksum(src, dst);
    }

    /// The MSS option value, if present.
    pub fn mss(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Mss(v) => Some(*v),
            _ => None,
        })
    }

    /// Whether SACK-permitted was offered.
    pub fn sack_permitted(&self) -> bool {
        self.options
            .iter()
            .any(|o| matches!(o, TcpOption::SackPermitted))
    }

    /// Number of sequence-space units this segment occupies
    /// (payload + 1 for SYN + 1 for FIN).
    pub fn seq_len(&self) -> u32 {
        let mut len = self.payload.len() as u32;
        if self.flags.contains(Flags::SYN) {
            len += 1;
        }
        if self.flags.contains(Flags::FIN) {
            len += 1;
        }
        len
    }
}

/// Sequence-number arithmetic (RFC 793 modular comparison).
pub mod seq {
    /// `a < b` in sequence space.
    pub fn lt(a: u32, b: u32) -> bool {
        // Negative difference iff `a` is "behind" `b` in the 2^31 window.
        (a.wrapping_sub(b) as i32) < 0
    }

    /// `a <= b` in sequence space.
    pub fn le(a: u32, b: u32) -> bool {
        a == b || lt(a, b)
    }

    /// Forward distance from `a` to `b` (b - a, wrapping).
    pub fn dist(a: u32, b: u32) -> u32 {
        b.wrapping_sub(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 9);

    fn syn_repr() -> Repr {
        Repr {
            src_port: 40000,
            dst_port: 80,
            seq: 0xdeadbeef,
            ack: 0,
            flags: Flags::SYN,
            window: 65535,
            options: vec![TcpOption::Mss(64), TcpOption::WindowScale(7)],
            payload: Vec::new(),
        }
    }

    #[test]
    fn emit_parse_round_trip_with_options() {
        let repr = syn_repr();
        let buf = repr.emit(SRC, DST);
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum(SRC, DST));
        let parsed = Repr::parse(&packet, SRC, DST).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(parsed.mss(), Some(64));
        assert!(!parsed.sack_permitted());
    }

    #[test]
    fn emit_parse_with_payload() {
        let mut repr = Repr::bare(1234, 443, 7, 99, Flags::ACK | Flags::PSH, 128);
        repr.payload = b"GET / HTTP/1.1\r\n\r\n".to_vec();
        let buf = repr.emit(SRC, DST);
        let packet = Packet::new_checked(&buf[..]).unwrap();
        let parsed = Repr::parse(&packet, SRC, DST).unwrap();
        assert_eq!(parsed.payload, repr.payload);
        assert_eq!(parsed.flags, Flags::ACK | Flags::PSH);
    }

    #[test]
    fn checksum_catches_payload_corruption() {
        let mut repr = Repr::bare(1, 2, 3, 4, Flags::ACK, 10);
        repr.payload = vec![0x55; 32];
        let mut buf = repr.emit(SRC, DST);
        *buf.last_mut().unwrap() ^= 0xff;
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(!packet.verify_checksum(SRC, DST));
    }

    #[test]
    fn checksum_depends_on_pseudo_header() {
        // Note: swapping src/dst does NOT change the ones-complement sum
        // (addition is commutative); a genuinely different address does.
        let repr = Repr::bare(1, 2, 3, 4, Flags::ACK, 10);
        let buf = repr.emit(SRC, DST);
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum(DST, SRC), "swap is sum-invariant");
        assert!(!packet.verify_checksum(SRC, Ipv4Addr::new(203, 0, 113, 10)));
    }

    #[test]
    fn options_padded_to_word_boundary() {
        let repr = Repr {
            options: vec![TcpOption::SackPermitted], // 2 bytes -> pad to 4
            ..syn_repr()
        };
        assert_eq!(repr.options_len(), 4);
        let buf = repr.emit(SRC, DST);
        assert_eq!(buf.len(), HEADER_LEN + 4);
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.header_len() as usize, HEADER_LEN + 4);
    }

    #[test]
    fn timestamps_round_trip() {
        let repr = Repr {
            options: vec![
                TcpOption::Timestamps(0x01020304, 0x0a0b0c0d),
                TcpOption::Nop,
            ],
            ..syn_repr()
        };
        let buf = repr.emit(SRC, DST);
        let parsed = Repr::parse(&Packet::new_checked(&buf[..]).unwrap(), SRC, DST).unwrap();
        // Nop is not preserved (it is padding), Timestamps is.
        assert!(parsed
            .options
            .contains(&TcpOption::Timestamps(0x01020304, 0x0a0b0c0d)));
    }

    #[test]
    fn unknown_option_is_skipped_not_fatal() {
        // kind 254, len 4.
        let mut repr = syn_repr();
        repr.options = vec![TcpOption::Unknown(254, 4), TcpOption::Mss(536)];
        let buf = repr.emit(SRC, DST);
        let parsed = Repr::parse(&Packet::new_checked(&buf[..]).unwrap(), SRC, DST).unwrap();
        assert_eq!(parsed.mss(), Some(536));
    }

    #[test]
    fn malformed_option_length_is_error() {
        let mut repr = syn_repr();
        repr.options = vec![TcpOption::Unknown(200, 4)];
        let mut buf = repr.emit(SRC, DST);
        buf[HEADER_LEN + 1] = 99; // length beyond region
        let packet = Packet::new_checked(&buf[..]).unwrap();
        let opts: Vec<_> = packet.options().collect();
        assert!(opts.iter().any(|o| o.is_err()));
    }

    #[test]
    fn truncated_rejected() {
        let repr = syn_repr();
        let buf = repr.emit(SRC, DST);
        assert_eq!(
            Packet::new_checked(&buf[..12]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn seq_len_counts_syn_fin() {
        let mut repr = Repr::bare(1, 2, 3, 4, Flags::SYN | Flags::FIN, 10);
        repr.payload = vec![0; 5];
        assert_eq!(repr.seq_len(), 7);
    }

    #[test]
    fn seq_arithmetic_wraps() {
        assert!(seq::lt(0xffff_fff0, 0x0000_0010));
        assert!(!seq::lt(0x0000_0010, 0xffff_fff0));
        assert!(seq::le(5, 5));
        assert_eq!(seq::dist(0xffff_ffff, 1), 2);
    }

    #[test]
    fn flags_display() {
        assert_eq!((Flags::SYN | Flags::ACK).to_string(), "SYN|ACK");
        assert_eq!(Flags::empty().to_string(), "-");
    }
}
