//! # iw-wire — wire formats for the initial-window scanner
//!
//! Zero-copy packet wrapper types in the style of `smoltcp`: each protocol
//! has a `Packet<T: AsRef<[u8]>>` view that validates and exposes header
//! fields in place, and a `Repr` ("representation") struct that captures the
//! semantic content of a header and can be emitted back into a buffer.
//!
//! The crate covers everything the scanner and the simulated hosts put on
//! the (virtual) wire:
//!
//! * [`ipv4`] — IPv4 headers with checksumming (no options, like ZMap emits).
//! * [`tcp`] — TCP segments including the option kinds the measurement
//!   methodology manipulates (MSS, Window Scale, SACK-permitted, Timestamps).
//! * [`icmp`] — ICMPv4 Echo and Destination Unreachable / Fragmentation
//!   Needed, used by the RFC 1191 path-MTU discovery scan (paper footnote 1).
//! * [`http`] — a small, strict HTTP/1.1 request/response
//!   serializer/parser sufficient for the HTTP probe module (`GET`, `Host`,
//!   `Connection: close`, `Location` extraction from 3xx responses).
//! * [`tls`] — TLS 1.2 record and handshake framing (ClientHello,
//!   ServerHello, Certificate) plus the browser-union cipher-suite registry
//!   the paper compiles from Safari/Firefox/Chrome + censys.
//! * [`pool`] — the pooled packet-buffer arena the hot path emits into
//!   (fixed-size slabs, free-list recycling, refcounted shared packets).
//!
//! Everything is `no_std`-shaped in spirit (no I/O, no globals) but uses
//! `alloc` types freely since the scanner is a host application.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod error;
pub mod http;
pub mod icmp;
pub mod ipv4;
pub mod pool;
pub mod tcp;
pub mod tls;

pub use error::{Error, Result};
pub use ipv4::Ipv4Addr;
pub use pool::{BufferPool, Packet as PooledPacket, PacketBuf, PoolStats};

/// IP protocol numbers used by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum IpProtocol {
    /// ICMPv4 (1).
    Icmp = 1,
    /// TCP (6).
    Tcp = 6,
    /// Anything else we do not parse further.
    Unknown(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            other => IpProtocol::Unknown(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        match p {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Unknown(v) => v,
        }
    }
}
