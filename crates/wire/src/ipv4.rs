//! IPv4 addresses and headers.
//!
//! The scanner emits headers without options (IHL = 5) exactly like ZMap;
//! the parser tolerates options on inbound packets but does not interpret
//! them.

use crate::checksum::{self, Checksum};
use crate::{Error, IpProtocol, Result};
use core::fmt;

/// An IPv4 address.
///
/// A local mirror of `std::net::Ipv4Addr` with the arithmetic the scanner
/// needs (index ↔ address mapping over the scan space, prefix containment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr(u32);

impl Ipv4Addr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr(0);

    /// Build from dotted-quad components.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// Build from a host-order `u32` (the numeric value of the address).
    pub const fn from_u32(v: u32) -> Self {
        Ipv4Addr(v)
    }

    /// The numeric (host-order) value of the address.
    pub const fn to_u32(self) -> u32 {
        self.0
    }

    /// Network-order octets.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Parse from four network-order octets.
    pub const fn from_octets(o: [u8; 4]) -> Self {
        Ipv4Addr(u32::from_be_bytes(o))
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl From<[u8; 4]> for Ipv4Addr {
    fn from(o: [u8; 4]) -> Self {
        Self::from_octets(o)
    }
}

/// A CIDR prefix, e.g. `10.0.0.0/8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cidr {
    addr: Ipv4Addr,
    prefix_len: u8,
}

impl Cidr {
    /// Construct a prefix; the address is masked to the prefix length.
    ///
    /// # Panics
    /// Panics if `prefix_len > 32`.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length out of range");
        Cidr {
            addr: Ipv4Addr::from_u32(addr.to_u32() & Self::mask(prefix_len)),
            prefix_len,
        }
    }

    fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(prefix_len))
        }
    }

    /// The (masked) network address.
    pub fn network(&self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// First address of the prefix as a `u32`.
    pub fn first(&self) -> u32 {
        self.addr.to_u32()
    }

    /// Last address of the prefix as a `u32`.
    pub fn last(&self) -> u32 {
        self.addr.to_u32() | !Self::mask(self.prefix_len)
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        ip.to_u32() & Self::mask(self.prefix_len) == self.addr.to_u32()
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix_len)
    }
}

/// Minimum IPv4 header length (no options).
pub const HEADER_LEN: usize = 20;

mod field {
    use core::ops::Range;
    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const LENGTH: Range<usize> = 2..4;
    pub const IDENT: Range<usize> = 4..6;
    pub const FLG_OFF: Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: Range<usize> = 10..12;
    pub const SRC_ADDR: Range<usize> = 12..16;
    pub const DST_ADDR: Range<usize> = 16..20;
}

/// Read a big-endian `u16` from the first two bytes of a field slice
/// (length already validated by `check_len`).
fn be16(b: &[u8]) -> u16 {
    u16::from_be_bytes([b[0], b[1]])
}

/// Copy the first four bytes of a (validated) address field slice.
fn octets4(b: &[u8]) -> [u8; 4] {
    [b[0], b[1], b[2], b[3]]
}

/// A read/write view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without any checks.
    pub const fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wrap a buffer, validating length fields.
    ///
    /// Ensures the fixed header is present, the version is 4, IHL is sane,
    /// and the total-length field fits inside the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Self::new_unchecked(buffer);
        packet.check_len()?;
        Ok(packet)
    }

    fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if self.version() != 4 {
            return Err(Error::Version);
        }
        let header_len = self.header_len() as usize;
        if header_len < HEADER_LEN {
            return Err(Error::Malformed);
        }
        let total_len = self.total_len() as usize;
        if total_len < header_len || data.len() < total_len {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Consume the view and return the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version field.
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VER_IHL] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[field::VER_IHL] & 0x0f) * 4
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> u16 {
        be16(&self.buffer.as_ref()[field::LENGTH])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        be16(&self.buffer.as_ref()[field::IDENT])
    }

    /// Don't Fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.buffer.as_ref()[field::FLG_OFF.start] & 0x40 != 0
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Layer-4 protocol.
    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from(self.buffer.as_ref()[field::PROTOCOL])
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        be16(&self.buffer.as_ref()[field::CHECKSUM])
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from_octets(octets4(&self.buffer.as_ref()[field::SRC_ADDR]))
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from_octets(octets4(&self.buffer.as_ref()[field::DST_ADDR]))
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let data = self.buffer.as_ref();
        checksum::checksum(&data[..self.header_len() as usize]) == 0
    }

    /// The layer-4 payload as declared by total-length.
    pub fn payload(&self) -> &[u8] {
        let data = self.buffer.as_ref();
        &data[self.header_len() as usize..self.total_len() as usize]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set version and IHL (header length in bytes, must be multiple of 4).
    pub fn set_version_header_len(&mut self, header_len: u8) {
        debug_assert!(header_len.is_multiple_of(4) && header_len >= 20);
        self.buffer.as_mut()[field::VER_IHL] = 0x40 | (header_len / 4);
    }

    /// Zero the DSCP/ECN byte.
    pub fn set_dscp_ecn(&mut self, v: u8) {
        self.buffer.as_mut()[field::DSCP_ECN] = v;
    }

    /// Set the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_be_bytes());
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, v: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&v.to_be_bytes());
    }

    /// Set flags/fragment-offset; `dont_frag` is the only flag we emit.
    pub fn set_flags(&mut self, dont_frag: bool) {
        let v: u16 = if dont_frag { 0x4000 } else { 0 };
        self.buffer.as_mut()[field::FLG_OFF].copy_from_slice(&v.to_be_bytes());
    }

    /// Set TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[field::TTL] = ttl;
    }

    /// Set the layer-4 protocol.
    pub fn set_protocol(&mut self, proto: IpProtocol) {
        self.buffer.as_mut()[field::PROTOCOL] = proto.into();
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[field::SRC_ADDR].copy_from_slice(&addr.octets());
    }

    /// Set the destination address.
    pub fn set_dst_addr(&mut self, addr: Ipv4Addr) {
        self.buffer.as_mut()[field::DST_ADDR].copy_from_slice(&addr.octets());
    }

    /// Compute and store the header checksum (over the header only).
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let sum = {
            let data = self.buffer.as_ref();
            let hlen = (data[field::VER_IHL] & 0x0f) as usize * 4;
            checksum::checksum(&data[..hlen])
        };
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }

    /// Mutable access to the payload region.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hlen = (self.buffer.as_ref()[field::VER_IHL] & 0x0f) as usize * 4;
        let tlen = be16(&self.buffer.as_ref()[field::LENGTH]) as usize;
        &mut self.buffer.as_mut()[hlen..tlen]
    }
}

/// High-level representation of an IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source address.
    pub src_addr: Ipv4Addr,
    /// Destination address.
    pub dst_addr: Ipv4Addr,
    /// Layer-4 protocol.
    pub protocol: IpProtocol,
    /// Payload length in bytes (excluding the IPv4 header).
    pub payload_len: usize,
    /// Time to live.
    pub ttl: u8,
}

impl Repr {
    /// Parse a representation out of a checked packet view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        if !packet.verify_checksum() {
            return Err(Error::Checksum);
        }
        Ok(Repr {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: packet.total_len() as usize - packet.header_len() as usize,
            ttl: packet.ttl(),
        })
    }

    /// Length of the emitted header.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit this header into the front of `packet`'s buffer and fill the
    /// checksum. The buffer must be at least `HEADER_LEN + payload_len`.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>, ident: u16) {
        packet.set_version_header_len(HEADER_LEN as u8);
        packet.set_dscp_ecn(0);
        packet.set_total_len((HEADER_LEN + self.payload_len) as u16);
        packet.set_ident(ident);
        packet.set_flags(true);
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
        packet.fill_checksum();
    }
}

/// Convenience: build a full IPv4 datagram around a layer-4 payload.
pub fn build_datagram(repr: &Repr, ident: u16, l4: &[u8]) -> Vec<u8> {
    debug_assert_eq!(repr.payload_len, l4.len());
    let mut buf = Vec::with_capacity(HEADER_LEN + l4.len());
    build_datagram_into(repr, ident, &mut buf, |payload| {
        payload.copy_from_slice(l4);
    });
    buf
}

/// Build a full IPv4 datagram in place — the pooled, allocation-free
/// variant of [`build_datagram`]. `buf` is zero-extended to the full
/// datagram length (it should arrive empty), `fill` writes the
/// `repr.payload_len` layer-4 bytes directly into the buffer, and the
/// header is emitted around them.
pub fn build_datagram_into(
    repr: &Repr,
    ident: u16,
    buf: &mut Vec<u8>,
    fill: impl FnOnce(&mut [u8]),
) {
    let start = buf.len();
    buf.resize(start + HEADER_LEN + repr.payload_len, 0);
    let datagram = &mut buf[start..];
    fill(&mut datagram[HEADER_LEN..]);
    let mut packet = Packet::new_unchecked(datagram);
    repr.emit(&mut packet, ident);
}

/// Compute the TCP/ICMP payload checksum helper used by sibling modules.
pub(crate) fn l4_checksum(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, l4: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_pseudo_header(src, dst, proto, l4.len() as u16);
    c.add_bytes(l4);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Repr {
        Repr {
            src_addr: Ipv4Addr::new(192, 0, 2, 1),
            dst_addr: Ipv4Addr::new(198, 51, 100, 7),
            protocol: IpProtocol::Tcp,
            payload_len: 4,
            ttl: 64,
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = sample_repr();
        let buf = build_datagram(&repr, 0x1234, &[1, 2, 3, 4]);
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum());
        assert_eq!(packet.ident(), 0x1234);
        assert!(packet.dont_frag());
        let parsed = Repr::parse(&packet).unwrap();
        assert_eq!(parsed, repr);
        assert_eq!(packet.payload(), &[1, 2, 3, 4]);
    }

    #[test]
    fn rejects_truncated() {
        let repr = sample_repr();
        let buf = build_datagram(&repr, 1, &[1, 2, 3, 4]);
        assert_eq!(
            Packet::new_checked(&buf[..10]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let repr = sample_repr();
        let mut buf = build_datagram(&repr, 1, &[1, 2, 3, 4]);
        buf[0] = 0x65; // version 6
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Version);
    }

    #[test]
    fn rejects_bad_total_len() {
        let repr = sample_repr();
        let mut buf = build_datagram(&repr, 1, &[1, 2, 3, 4]);
        buf[2] = 0xff;
        buf[3] = 0xff; // total length larger than buffer
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let repr = sample_repr();
        let mut buf = build_datagram(&repr, 1, &[1, 2, 3, 4]);
        buf[8] = buf[8].wrapping_add(1); // flip TTL
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(!packet.verify_checksum());
        assert_eq!(Repr::parse(&packet).unwrap_err(), Error::Checksum);
    }

    #[test]
    fn addr_display_and_octets() {
        let a = Ipv4Addr::new(10, 1, 2, 3);
        assert_eq!(a.to_string(), "10.1.2.3");
        assert_eq!(Ipv4Addr::from_octets(a.octets()), a);
        assert_eq!(a.to_u32(), 0x0a010203);
    }

    #[test]
    fn cidr_contains_and_bounds() {
        let c = Cidr::new(Ipv4Addr::new(10, 0, 0, 99), 8);
        assert_eq!(c.network(), Ipv4Addr::new(10, 0, 0, 0));
        assert!(c.contains(Ipv4Addr::new(10, 255, 1, 2)));
        assert!(!c.contains(Ipv4Addr::new(11, 0, 0, 0)));
        assert_eq!(c.first(), 0x0a000000);
        assert_eq!(c.last(), 0x0affffff);
        assert_eq!(c.size(), 1 << 24);
        assert_eq!(c.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn cidr_zero_and_full_prefix() {
        let all = Cidr::new(Ipv4Addr::new(1, 2, 3, 4), 0);
        assert!(all.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(all.size(), 1 << 32);
        let host = Cidr::new(Ipv4Addr::new(1, 2, 3, 4), 32);
        assert!(host.contains(Ipv4Addr::new(1, 2, 3, 4)));
        assert!(!host.contains(Ipv4Addr::new(1, 2, 3, 5)));
        assert_eq!(host.size(), 1);
    }
}
