//! Pooled packet buffers: a slab arena with free-list recycling.
//!
//! Every packet the scanner or a simulated host emits used to be a fresh
//! `Vec<u8>`, and every link-level duplicate a deep clone — between two
//! and three heap allocations per packet on the hot path. The pool turns
//! that into amortized zero: buffers are fixed-capacity slabs drawn from
//! a free list, writable while building ([`PacketBuf`]), then frozen
//! into cheaply clonable, immutable [`Packet`]s for routing (a clone is
//! a reference-count bump, which is what link fan-out and duplication
//! want). When the last reference drops, the slab returns to the free
//! list of the pool it came from.
//!
//! The pool is deliberately single-threaded (`Rc`/`RefCell`): a
//! simulation shard — scanner, hosts, links, queue — lives entirely on
//! one thread, and sharded scans give each shard its own pool. Nothing
//! here reads a clock, and there is no `unsafe`; both properties are
//! enforced by `iw-lint`.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::rc::Rc;

/// Default slab capacity: one MTU-sized packet plus headroom, so no scan
/// packet ever forces a mid-build reallocation.
pub const SLAB_CAPACITY: usize = 2048;

/// Allocation counters for one pool (monotonic except `outstanding`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Slabs created fresh from the allocator (free-list misses).
    pub allocated: u64,
    /// Buffers served from the free list (free-list hits).
    pub recycled: u64,
    /// Buffers currently checked out (building or in flight).
    pub outstanding: u64,
    /// Highest `outstanding` ever observed.
    pub high_water: u64,
}

#[derive(Debug, Default)]
struct PoolInner {
    free: Vec<Vec<u8>>,
    stats: PoolStats,
}

/// A free-list arena of packet buffers. Cloning is cheap and yields a
/// handle to the same pool.
#[derive(Debug, Clone, Default)]
pub struct BufferPool {
    inner: Rc<RefCell<PoolInner>>,
}

impl BufferPool {
    /// A new, empty pool.
    pub fn new() -> BufferPool {
        BufferPool::default()
    }

    /// Check out a writable, empty buffer (recycled when possible).
    pub fn take(&self) -> PacketBuf {
        // the RefCell is the pool's own declared state (rank 10):
        // iw-lint: allow(hot-path-purity): single-threaded borrow, released before return
        let mut inner = self.inner.borrow_mut();
        let data = match inner.free.pop() {
            Some(mut v) => {
                v.clear();
                inner.stats.recycled += 1;
                v
            }
            None => {
                inner.stats.allocated += 1;
                // steady state recycles and never reaches this arm:
                // iw-lint: allow(hot-path-purity): pool-miss slab growth
                Vec::with_capacity(SLAB_CAPACITY)
            }
        };
        inner.stats.outstanding += 1;
        inner.stats.high_water = inner.stats.high_water.max(inner.stats.outstanding);
        drop(inner);
        PacketBuf {
            data,
            pool: Some(self.clone()),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.borrow().stats
    }

    fn put_back(&self, data: Vec<u8>) {
        let mut inner = self.inner.borrow_mut();
        inner.stats.outstanding -= 1;
        inner.free.push(data);
    }
}

/// A writable packet buffer checked out of a [`BufferPool`] (or
/// standalone, for callers without a pool). Derefs to `Vec<u8>` so the
/// usual emit paths work unchanged; freeze it into a [`Packet`] to send.
#[derive(Debug)]
pub struct PacketBuf {
    data: Vec<u8>,
    pool: Option<BufferPool>,
}

impl PacketBuf {
    /// A pool-less buffer (dropped, not recycled).
    pub fn from_vec(data: Vec<u8>) -> PacketBuf {
        PacketBuf { data, pool: None }
    }

    /// Grow to `len` bytes, zero-filling — the emit-into idiom.
    pub fn resize_zeroed(&mut self, len: usize) {
        self.data.resize(len, 0);
    }

    /// Freeze into an immutable, cheaply clonable packet.
    pub fn freeze(self) -> Packet {
        Packet {
            shared: Rc::new(self),
        }
    }
}

impl Drop for PacketBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put_back(std::mem::take(&mut self.data));
        }
    }
}

impl Deref for PacketBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.data
    }
}

impl DerefMut for PacketBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }
}

/// An immutable packet on the (virtual) wire. `Clone` bumps a reference
/// count — link duplication and fan-out share one buffer — and the slab
/// returns to its pool when the last reference drops.
#[derive(Debug, Clone)]
pub struct Packet {
    shared: Rc<PacketBuf>,
}

impl Packet {
    /// Wrap an unpooled byte vector (compatibility path for tests and
    /// cold paths; the buffer is freed, not recycled).
    pub fn from_vec(data: Vec<u8>) -> Packet {
        PacketBuf::from_vec(data).freeze()
    }

    /// The packet bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.shared.data
    }
}

impl Deref for Packet {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.shared.data
    }
}

impl From<Vec<u8>> for Packet {
    fn from(data: Vec<u8>) -> Packet {
        Packet::from_vec(data)
    }
}

impl AsRef<[u8]> for Packet {
    fn as_ref(&self) -> &[u8] {
        &self.shared.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_through_the_free_list() {
        let pool = BufferPool::new();
        let a = pool.take();
        assert_eq!(
            pool.stats(),
            PoolStats {
                allocated: 1,
                recycled: 0,
                outstanding: 1,
                high_water: 1
            }
        );
        drop(a);
        assert_eq!(pool.stats().outstanding, 0);
        let b = pool.take();
        assert_eq!(pool.stats().recycled, 1, "free-list hit");
        assert_eq!(pool.stats().allocated, 1, "no second slab");
        assert_eq!(b.capacity(), SLAB_CAPACITY);
    }

    #[test]
    fn freeze_shares_and_returns_on_last_drop() {
        let pool = BufferPool::new();
        let mut buf = pool.take();
        buf.extend_from_slice(b"hello");
        let p = buf.freeze();
        let q = p.clone();
        assert_eq!(&*p, b"hello");
        assert_eq!(&*q, b"hello");
        assert_eq!(pool.stats().outstanding, 1, "clones share one slab");
        drop(p);
        assert_eq!(pool.stats().outstanding, 1, "still referenced");
        drop(q);
        assert_eq!(pool.stats().outstanding, 0, "slab returned");
        let again = pool.take();
        assert!(again.is_empty(), "recycled slab comes back cleared");
    }

    #[test]
    fn high_water_tracks_peak() {
        let pool = BufferPool::new();
        let bufs: Vec<_> = (0..5).map(|_| pool.take()).collect();
        drop(bufs);
        let s = pool.stats();
        assert_eq!(s.high_water, 5);
        assert_eq!(s.outstanding, 0);
        assert_eq!(s.allocated, 5);
    }

    #[test]
    fn unpooled_buffers_work_without_a_pool() {
        let p = Packet::from_vec(vec![1, 2, 3]);
        assert_eq!(p.bytes(), &[1, 2, 3]);
        let mut buf = PacketBuf::from_vec(Vec::new());
        buf.resize_zeroed(4);
        assert_eq!(&*buf.freeze(), &[0, 0, 0, 0]);
    }

    #[test]
    fn resize_zeroed_clears_recycled_contents() {
        let pool = BufferPool::new();
        let mut a = pool.take();
        a.extend_from_slice(&[0xff; 64]);
        drop(a);
        let mut b = pool.take();
        b.resize_zeroed(32);
        assert!(b.iter().all(|&x| x == 0), "no stale bytes leak through");
    }
}
