//! Minimal HTTP/1.x request/response handling for the HTTP probe module.
//!
//! The probe (paper §3.2) needs exactly this much HTTP:
//!
//! * build `GET` requests with a `Host` header (the bare IP when nothing
//!   else is known), `Connection: close`, and an arbitrarily long URI (the
//!   error-page bloating trick);
//! * recognize a response status line;
//! * extract the `Location` header from `3xx` responses to follow
//!   redirects on a fresh connection.
//!
//! The parser is intentionally tolerant: scan targets speak wildly varying
//! dialects and the prober only ever needs the status code and one header.

use crate::{Error, Result};
use std::collections::BTreeMap;

/// An outgoing HTTP request (only what the prober emits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method; the prober only uses `GET`.
    pub method: String,
    /// Request target (origin-form URI).
    pub uri: String,
    /// `Host` header value.
    pub host: String,
    /// Additional headers in order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// A probe `GET` with `Connection: close` (so a FIN marks "out of
    /// data", §3.2) and a `User-Agent` identifying the research scan.
    pub fn probe_get(uri: &str, host: &str) -> Request {
        Request {
            method: "GET".into(),
            uri: uri.into(),
            host: host.into(),
            headers: vec![
                (
                    "User-Agent".into(),
                    "iw-scan/0.1 (research scan; see DESIGN.md)".into(),
                ),
                ("Accept".into(), "*/*".into()),
                ("Connection".into(), "close".into()),
            ],
        }
    }

    /// Serialize onto the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "{} {} HTTP/1.1\r\nHost: {}\r\n",
            self.method, self.uri, self.host
        );
        for (k, v) in &self.headers {
            out.push_str(k);
            out.push_str(": ");
            out.push_str(v);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out.into_bytes()
    }

    /// Parse a request head (used by the simulated HTTP servers).
    ///
    /// Expects the full head (terminated by an empty line) to be present;
    /// returns `Error::Truncated` until it is, so servers can keep
    /// buffering.
    pub fn parse(data: &[u8]) -> Result<Request> {
        let head_end = find_head_end(data).ok_or(Error::Truncated)?;
        let head = std::str::from_utf8(&data[..head_end]).map_err(|_| Error::HttpSyntax)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or(Error::HttpSyntax)?;
        let mut parts = request_line.split(' ');
        let method = parts.next().ok_or(Error::HttpSyntax)?.to_string();
        let uri = parts.next().ok_or(Error::HttpSyntax)?.to_string();
        let version = parts.next().ok_or(Error::HttpSyntax)?;
        if !version.starts_with("HTTP/1.") {
            return Err(Error::HttpSyntax);
        }
        let mut host = String::new();
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (k, v) = line.split_once(':').ok_or(Error::HttpSyntax)?;
            let (k, v) = (k.trim(), v.trim());
            if k.eq_ignore_ascii_case("host") {
                host = v.to_string();
            } else {
                headers.push((k.to_string(), v.to_string()));
            }
        }
        Ok(Request {
            method,
            uri,
            host,
            headers,
        })
    }
}

/// A parsed HTTP response head (what the prober inspects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseHead {
    /// Numeric status code.
    pub status: u16,
    /// Headers, lower-cased keys, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Offset of the body within the parsed buffer.
    pub body_offset: usize,
}

impl ResponseHead {
    /// Parse a response head out of (possibly partial) stream data.
    ///
    /// Returns `Error::Truncated` while the blank line has not arrived.
    pub fn parse(data: &[u8]) -> Result<ResponseHead> {
        let head_end = find_head_end(data).ok_or(Error::Truncated)?;
        let head = std::str::from_utf8(&data[..head_end]).map_err(|_| Error::HttpSyntax)?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or(Error::HttpSyntax)?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().ok_or(Error::HttpSyntax)?;
        if !version.starts_with("HTTP/") {
            return Err(Error::HttpSyntax);
        }
        let status: u16 = parts
            .next()
            .ok_or(Error::HttpSyntax)?
            .parse()
            .map_err(|_| Error::HttpSyntax)?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (k, v) = line.split_once(':').ok_or(Error::HttpSyntax)?;
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
        Ok(ResponseHead {
            status,
            headers,
            body_offset: head_end + 4,
        })
    }

    /// First value of a (case-insensitive) header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether this is a redirect carrying a usable `Location`.
    pub fn redirect_location(&self) -> Option<&str> {
        if (300..400).contains(&self.status) {
            self.header("location")
        } else {
            None
        }
    }
}

/// Split an absolute or origin-form URI into (host, path) as the prober
/// needs when following a `Location` header (§3.2): `http://example.com/a`
/// → `("example.com", "/a")`; `/a` → `("", "/a")`.
pub fn split_location(location: &str) -> (String, String) {
    for scheme in ["http://", "https://"] {
        if let Some(rest) = location.strip_prefix(scheme) {
            return match rest.find('/') {
                Some(idx) => (rest[..idx].to_string(), rest[idx..].to_string()),
                None => (rest.to_string(), "/".to_string()),
            };
        }
    }
    if location.starts_with('/') {
        (String::new(), location.to_string())
    } else {
        // Opaque/relative junk: treat as a path from root.
        (String::new(), format!("/{location}"))
    }
}

/// Build a response head + body (used by the simulated servers).
#[derive(Debug, Clone)]
pub struct ResponseBuilder {
    status: u16,
    reason: &'static str,
    headers: BTreeMap<String, String>,
    body: Vec<u8>,
}

impl ResponseBuilder {
    /// Start a response with a status code and reason phrase.
    pub fn new(status: u16, reason: &'static str) -> Self {
        ResponseBuilder {
            status,
            reason,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// Add/overwrite a header.
    pub fn header(mut self, k: &str, v: impl Into<String>) -> Self {
        self.headers.insert(k.to_string(), v.into());
        self
    }

    /// Set the body; `Content-Length` is filled automatically.
    pub fn body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Serialize the full response.
    pub fn build(mut self) -> Vec<u8> {
        let body = std::mem::take(&mut self.body);
        let mut bytes = self.head(body.len());
        bytes.extend_from_slice(&body);
        bytes
    }

    /// Serialize just the head (with `Content-Length: content_length`),
    /// reserving room for the body. The caller appends the body bytes
    /// directly into the returned buffer — the zero-copy path for the
    /// simulated servers' bulk pages.
    pub fn head(self, content_length: usize) -> Vec<u8> {
        self.serialize_head(content_length, content_length)
    }

    /// Serialize just the head, without reserving body capacity — for
    /// responses whose body is produced lazily (never all at once).
    pub fn head_only(self, content_length: usize) -> Vec<u8> {
        self.serialize_head(content_length, 0)
    }

    fn serialize_head(self, content_length: usize, reserve_body: usize) -> Vec<u8> {
        use std::fmt::Write;
        let mut head_len = 64;
        for (k, v) in &self.headers {
            head_len += k.len() + v.len() + 4;
        }
        let mut out = String::with_capacity(head_len + reserve_body);
        let _ = write!(out, "HTTP/1.1 {} {}\r\n", self.status, self.reason);
        for (k, v) in &self.headers {
            let _ = write!(out, "{k}: {v}\r\n");
        }
        let _ = write!(out, "Content-Length: {content_length}\r\n\r\n");
        out.into_bytes()
    }
}

fn find_head_end(data: &[u8]) -> Option<usize> {
    // Skip to each '\r' (a single-byte search the compiler vectorizes)
    // instead of comparing a 4-byte window at every offset — probe URIs
    // make heads kilobytes long and truncated parses rescan from zero.
    let mut start = 0;
    while let Some(off) = data[start..].iter().position(|&b| b == b'\r') {
        let i = start + off;
        if i + 4 > data.len() {
            return None;
        }
        if &data[i..i + 4] == b"\r\n\r\n" {
            return Some(i);
        }
        start = i + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_get_serializes() {
        let req = Request::probe_get("/", "203.0.113.9");
        let bytes = req.to_bytes();
        let text = std::str::from_utf8(&bytes).unwrap();
        assert!(text.starts_with("GET / HTTP/1.1\r\nHost: 203.0.113.9\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn request_round_trip() {
        let req = Request::probe_get("/probe", "example.com");
        let parsed = Request::parse(&req.to_bytes()).unwrap();
        assert_eq!(parsed.method, "GET");
        assert_eq!(parsed.uri, "/probe");
        assert_eq!(parsed.host, "example.com");
        assert!(parsed
            .headers
            .iter()
            .any(|(k, v)| k == "Connection" && v == "close"));
    }

    #[test]
    fn partial_request_is_truncated() {
        let req = Request::probe_get("/", "h").to_bytes();
        assert_eq!(
            Request::parse(&req[..req.len() - 1]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn response_parse_and_location() {
        let raw = b"HTTP/1.1 301 Moved Permanently\r\nLocation: http://www.example.com/index.html\r\nServer: test\r\n\r\nbody";
        let head = ResponseHead::parse(raw).unwrap();
        assert_eq!(head.status, 301);
        assert_eq!(
            head.redirect_location(),
            Some("http://www.example.com/index.html")
        );
        assert_eq!(&raw[head.body_offset..], b"body");
    }

    #[test]
    fn non_redirect_has_no_location() {
        let raw = b"HTTP/1.1 200 OK\r\nLocation: /x\r\n\r\n";
        let head = ResponseHead::parse(raw).unwrap();
        assert_eq!(head.redirect_location(), None);
    }

    #[test]
    fn split_location_variants() {
        assert_eq!(
            split_location("http://www.foo.com/a/b"),
            ("www.foo.com".into(), "/a/b".into())
        );
        assert_eq!(
            split_location("https://foo.com"),
            ("foo.com".into(), "/".into())
        );
        assert_eq!(split_location("/moved"), (String::new(), "/moved".into()));
        assert_eq!(split_location("moved"), (String::new(), "/moved".into()));
    }

    #[test]
    fn response_builder_sets_content_length() {
        let resp = ResponseBuilder::new(404, "Not Found")
            .header("Server", "sim")
            .body(b"nope".to_vec())
            .build();
        let head = ResponseHead::parse(&resp).unwrap();
        assert_eq!(head.status, 404);
        assert_eq!(head.header("content-length"), Some("4"));
        assert_eq!(&resp[head.body_offset..], b"nope");
    }

    #[test]
    fn bad_status_line_is_syntax_error() {
        assert_eq!(
            ResponseHead::parse(b"garbage here\r\n\r\n").unwrap_err(),
            Error::HttpSyntax
        );
        assert_eq!(
            ResponseHead::parse(b"HTTP/1.1 abc OK\r\n\r\n").unwrap_err(),
            Error::HttpSyntax
        );
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let raw = b"HTTP/1.1 200 OK\r\nX-Thing: 1\r\n\r\n";
        let head = ResponseHead::parse(raw).unwrap();
        assert_eq!(head.header("x-thing"), Some("1"));
        assert_eq!(head.header("X-THING"), Some("1"));
    }
}
