//! Property tests on the simulator: conservation, determinism and
//! ordering invariants of the event kernel and link model.

use iw_netsim::link::Direction;
use iw_netsim::sim::SimConfig;
use iw_netsim::{Duration, Effects, Endpoint, Instant, Link, LinkConfig, Sim, TimerToken};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn packet_to(dst: u32, tag: u8) -> Vec<u8> {
    let mut pkt = vec![0u8; 21];
    pkt[16..20].copy_from_slice(&dst.to_be_bytes());
    pkt[20] = tag;
    pkt
}

/// Echoes every packet back once.
struct Echo(u32);
impl Endpoint for Echo {
    fn on_packet(&mut self, pkt: &[u8], _now: Instant, fx: &mut Effects) {
        fx.send(packet_to(self.0, pkt[20]));
    }
    fn on_timer(&mut self, _t: TimerToken, _n: Instant, _fx: &mut Effects) {}
}

#[derive(Default)]
struct Collector {
    tags: Vec<u8>,
    times: Vec<Instant>,
}
impl Endpoint for Collector {
    fn on_packet(&mut self, pkt: &[u8], now: Instant, _fx: &mut Effects) {
        self.tags.push(pkt[20]);
        self.times.push(now);
    }
    fn on_timer(&mut self, _t: TimerToken, _n: Instant, _fx: &mut Effects) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On lossless links, every packet sent comes back exactly once —
    /// conservation through the kernel, whatever the topology size.
    #[test]
    fn lossless_echo_conserves_packets(
        targets in proptest::collection::vec(1u32..500, 1..40),
        latency_ms in 1u64..50,
    ) {
        let latency = Duration::from_millis(latency_ms);
        let factory = move |ip: u32| {
            Some((
                Box::new(Echo(ip)) as Box<dyn Endpoint>,
                LinkConfig { latency, ..LinkConfig::default() },
            ))
        };
        let mut sim = Sim::new(Collector::default(), factory, SimConfig::default());
        let expected: Vec<u8> = targets.iter().enumerate().map(|(i, _)| i as u8).collect();
        sim.kick_scanner(|_, _, fx| {
            for (i, t) in targets.iter().enumerate() {
                fx.send(packet_to(*t, i as u8));
            }
        });
        sim.run_to_completion();
        let mut got = sim.scanner().tags.clone();
        got.sort_unstable();
        let mut want = expected;
        want.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert_eq!(sim.stats().scanner_tx, targets.len() as u64);
        prop_assert_eq!(sim.stats().scanner_rx, targets.len() as u64);
    }

    /// Virtual time never goes backwards and equals 2× the one-way
    /// latency for an echo on a jitter-free link.
    #[test]
    fn time_is_monotone_and_latency_exact(latency_ms in 1u64..100) {
        let latency = Duration::from_millis(latency_ms);
        let factory = move |ip: u32| {
            Some((
                Box::new(Echo(ip)) as Box<dyn Endpoint>,
                LinkConfig { latency, ..LinkConfig::default() },
            ))
        };
        let mut sim = Sim::new(Collector::default(), factory, SimConfig::default());
        sim.kick_scanner(|_, _, fx| fx.send(packet_to(7, 0)));
        sim.run_to_completion();
        prop_assert_eq!(sim.scanner().times.len(), 1);
        prop_assert_eq!(
            sim.scanner().times[0],
            Instant::ZERO + Duration::from_millis(2 * latency_ms)
        );
    }

    /// Identical seeds give identical delivery schedules even with loss
    /// and jitter.
    #[test]
    fn deterministic_under_impairments(
        seed in any::<u64>(),
        loss in 0.0f64..0.5,
        jitter_ms in 0u64..20,
        n in 1usize..60,
    ) {
        let run = || {
            let factory = move |ip: u32| {
                Some((
                    Box::new(Echo(ip)) as Box<dyn Endpoint>,
                    LinkConfig {
                        latency: Duration::from_millis(10),
                        jitter: Duration::from_millis(jitter_ms),
                        loss,
                        ..LinkConfig::default()
                    },
                ))
            };
            let mut sim = Sim::new(
                Collector::default(),
                factory,
                SimConfig { seed, ..SimConfig::default() },
            );
            sim.kick_scanner(|_, _, fx| {
                for i in 0..n {
                    fx.send(packet_to(1 + (i as u32 % 5), i as u8));
                }
            });
            sim.run_to_completion();
            (sim.scanner().tags.clone(), sim.scanner().times.clone(), sim.stats())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }

    /// Link loss statistics stay within a generous binomial envelope.
    #[test]
    fn link_loss_statistics(loss in 0.05f64..0.95, seed in any::<u64>()) {
        let mut link = Link::new(LinkConfig::default().with_loss(loss), seed);
        let n = 4000;
        let delivered = (0..n)
            .filter(|_| !link.transit(Direction::Forward).is_empty())
            .count() as f64;
        let expected = n as f64 * (1.0 - loss);
        let sigma = (n as f64 * loss * (1.0 - loss)).sqrt();
        prop_assert!(
            (delivered - expected).abs() < 5.0 * sigma + 1.0,
            "delivered {delivered}, expected {expected} ± {sigma}"
        );
    }

    /// Timers fire in deadline order regardless of arming order.
    #[test]
    fn timers_fire_in_deadline_order(delays in proptest::collection::vec(1u64..1000, 1..30)) {
        let fired = Rc::new(RefCell::new(Vec::<u64>::new()));
        struct TimerLogger(Rc<RefCell<Vec<u64>>>);
        impl Endpoint for TimerLogger {
            fn on_packet(&mut self, _p: &[u8], _n: Instant, _fx: &mut Effects) {}
            fn on_timer(&mut self, token: TimerToken, _n: Instant, _fx: &mut Effects) {
                self.0.borrow_mut().push(token);
            }
        }
        let factory = |_ip: u32| -> Option<(Box<dyn Endpoint>, LinkConfig)> { None };
        let mut sim = Sim::new(TimerLogger(fired.clone()), factory, SimConfig::default());
        let delays2 = delays.clone();
        sim.kick_scanner(move |_, _, fx| {
            for (i, d) in delays2.iter().enumerate() {
                fx.arm(Duration::from_millis(*d), i as u64);
            }
        });
        sim.run_to_completion();
        let fired = fired.borrow();
        prop_assert_eq!(fired.len(), delays.len());
        // Sorted by deadline; ties by arming order (the seq tiebreaker).
        let mut expected: Vec<(u64, u64)> = delays
            .iter()
            .enumerate()
            .map(|(i, d)| (*d, i as u64))
            .collect();
        expected.sort();
        let expected_tokens: Vec<u64> = expected.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(fired.clone(), expected_tokens);
    }
}
