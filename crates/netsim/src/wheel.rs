//! Hierarchical timer wheel: the simulator's event queue.
//!
//! The kernel used to keep every future event in one `BinaryHeap`, paying
//! O(log n) per schedule and per pop with n in the tens of thousands once
//! a scan is pacing millions of packets per virtual second. The wheel
//! replaces that with O(1) amortized scheduling: virtual time is split
//! into ticks of 2^[`TICK_SHIFT`] ns (~0.52 ms), and a pending event is
//! filed into one of [`LEVELS`] × [`SLOTS`] buckets addressed by the
//! highest tick bit in which its deadline differs from the current tick
//! (the classic hashed hierarchical wheel of Varghese & Lauck, also used
//! by the rtcp userspace stack this engine follows).
//!
//! Ordering contract — identical to the heap it replaces: events pop in
//! `(at, seq)` order, where `seq` is the caller's monotonically
//! increasing insertion sequence. The wheel guarantees this by
//! construction:
//!
//! * slots partition time, and slots are drained in tick order, so two
//!   events in different ticks never reorder;
//! * every event whose tick has been reached sits in the `due` heap,
//!   which is ordered by exact `(at, seq)` — so events inside one tick
//!   (and late insertions into the current tick) fire in heap order, and
//!   every event still out on the wheel has a strictly larger deadline
//!   than anything in `due` (its tick, hence its `at`, is larger).
//!
//! There is no cancel operation for the same reason the heap never had
//! one: endpoints treat stale timer tokens as no-ops, which *is* O(1)
//! cancellation — the entry fires into a dead token and is dropped.

use crate::time::Instant;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the tick length in nanoseconds (2^19 ns ≈ 0.52 ms — finer
/// than every RTO/pacing interval the scanner arms, so same-tick
/// collisions stay rare).
const TICK_SHIFT: u32 = 19;
/// log2 of the slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. A tick index has at most 64 − [`TICK_SHIFT`] = 45
/// significant bits, and 8 levels × 6 bits = 48 bits cover all of them:
/// every representable deadline has a home bucket, so there is no
/// overflow path to get wrong.
const LEVELS: usize = 8;

/// A scheduled entry: the deadline, the global insertion sequence that
/// breaks deadline ties, and the caller's payload.
#[derive(Debug)]
struct Entry<T> {
    at: Instant,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One wheel level: 64 buckets plus an occupancy bitmap so the next
/// non-empty bucket is a `trailing_zeros`, not a scan.
#[derive(Debug)]
struct Level<T> {
    slots: [Vec<Entry<T>>; SLOTS],
    occupied: u64,
}

impl<T> Level<T> {
    fn new() -> Level<T> {
        Level {
            slots: std::array::from_fn(|_| Vec::new()),
            occupied: 0,
        }
    }
}

/// Hierarchical timer wheel ordered by `(at, seq)`.
///
/// `seq` values must be supplied in increasing order by the caller (the
/// kernel's global event sequence); `at` may be anything at or after the
/// deadline of the most recently popped entry.
#[derive(Debug)]
pub struct TimerWheel<T> {
    levels: [Level<T>; LEVELS],
    /// Entries whose tick the cursor has reached, in exact pop order.
    due: BinaryHeap<Reverse<Entry<T>>>,
    /// The cursor: every entry on the wheel has `tick(at) > cur_tick`.
    cur_tick: u64,
    len: usize,
}

const fn tick_of(at: Instant) -> u64 {
    at.as_nanos() >> TICK_SHIFT
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel with the cursor at virtual time zero.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            levels: std::array::from_fn(|_| Level::new()),
            due: BinaryHeap::new(),
            cur_tick: 0,
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `item` for `at`, with tie-break sequence `seq`.
    pub fn push(&mut self, at: Instant, seq: u64, item: T) {
        self.len += 1;
        let tick = tick_of(at);
        if tick <= self.cur_tick {
            self.due.push(Reverse(Entry { at, seq, item }));
            return;
        }
        self.file(Entry { at, seq, item }, tick);
    }

    /// File a future entry (tick strictly beyond the cursor) on the wheel:
    /// the level is chosen by the highest bit in which the entry's tick
    /// differs from the cursor, so the entry's slot index within that
    /// level is always ahead of the cursor's.
    fn file(&mut self, entry: Entry<T>, tick: u64) {
        let differing = tick ^ self.cur_tick;
        let top_bit = 63 - differing.leading_zeros();
        let level = (top_bit / SLOT_BITS) as usize;
        let slot = (tick >> (level as u32 * SLOT_BITS)) as usize & (SLOTS - 1);
        let l = &mut self.levels[level];
        l.slots[slot].push(entry);
        l.occupied |= 1 << slot;
    }

    /// The deadline of the next entry, advancing the cursor as needed.
    pub fn peek_at(&mut self) -> Option<Instant> {
        self.advance_to_due();
        self.due.peek().map(|Reverse(e)| e.at)
    }

    /// Remove and return the next entry in `(at, seq)` order.
    pub fn pop(&mut self) -> Option<(Instant, T)> {
        self.advance_to_due();
        let Reverse(e) = self.due.pop()?;
        self.len -= 1;
        Some((e.at, e.item))
    }

    /// Advance the cursor until `due` holds the next entry (or the wheel
    /// is empty). Each iteration drains the earliest occupied bucket.
    fn advance_to_due(&mut self) {
        while self.due.is_empty() && self.len > 0 {
            let Some((level, slot)) = self.next_occupied() else {
                debug_assert!(false, "wheel accounting broken: len > 0, no bucket");
                return;
            };
            let l = &mut self.levels[level];
            let entries = std::mem::take(&mut l.slots[slot]);
            l.occupied &= !(1 << slot);
            // Move the cursor to the bucket's base tick. Every drained
            // entry lands at or beyond it, and every other pending entry
            // is in a strictly later bucket.
            let span = level as u32 * SLOT_BITS;
            let mut base = self.cur_tick;
            base &= !(((1u64 << SLOT_BITS) - 1) << span); // clear slot field
            base |= (slot as u64) << span; // set to drained slot
            base &= !((1u64 << span) - 1); // clear all lower fields
            self.cur_tick = base;
            for e in entries {
                let tick = tick_of(e.at);
                if tick <= self.cur_tick {
                    self.due.push(Reverse(e));
                } else {
                    self.file(e, tick); // re-files into a lower level
                }
            }
        }
    }

    /// Locate the earliest occupied bucket at or after the cursor.
    ///
    /// Levels are searched bottom-up: a level-0 bucket in the cursor's
    /// window always expires before any occupied bucket of a higher
    /// level, because an entry sharing the cursor's upper tick bits is
    /// always filed at the lowest level that distinguishes it. Within a
    /// level, buckets below the cursor's slot belong to an earlier lap
    /// and are necessarily empty ([`Self::file`] only ever places
    /// entries ahead of the cursor).
    fn next_occupied(&self) -> Option<(usize, usize)> {
        for level in 0..LEVELS {
            let cur_slot = (self.cur_tick >> (level as u32 * SLOT_BITS)) & (SLOTS - 1) as u64;
            let ahead = self.levels[level].occupied & (!0u64 << cur_slot);
            if ahead != 0 {
                return Some((level, ahead.trailing_zeros() as usize));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    /// Deterministic xorshift PRNG — no external dependencies, fully
    /// reproducible property runs.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    /// Reference model: the heap the wheel replaced.
    #[derive(Default)]
    struct HeapModel {
        heap: BinaryHeap<Reverse<Entry<u64>>>,
    }
    impl HeapModel {
        fn push(&mut self, at: Instant, seq: u64, item: u64) {
            self.heap.push(Reverse(Entry { at, seq, item }));
        }
        fn pop(&mut self) -> Option<(Instant, u64)> {
            self.heap.pop().map(|Reverse(e)| (e.at, e.item))
        }
    }

    #[test]
    fn fires_in_at_seq_order() {
        let mut w = TimerWheel::new();
        w.push(Instant::from_nanos(500), 1, "b");
        w.push(Instant::from_nanos(100), 2, "a");
        w.push(Instant::from_nanos(500), 0, "first-at-500");
        assert_eq!(w.pop(), Some((Instant::from_nanos(100), "a")));
        assert_eq!(w.pop(), Some((Instant::from_nanos(500), "first-at-500")));
        assert_eq!(w.pop(), Some((Instant::from_nanos(500), "b")));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn same_order_as_heap_under_random_schedules() {
        // Property: for arbitrary interleavings of schedules and pops —
        // including schedules issued *while* draining, at or after the
        // last popped deadline, exactly like the kernel rearming timers
        // from an event handler — the wheel pops the same sequence as
        // the ordered heap.
        for seed in 1..=10u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut wheel = TimerWheel::new();
            let mut model = HeapModel::default();
            let mut seq = 0u64;
            let mut now = 0u64; // last popped deadline: schedule floor
            let mut pending = 0i64;
            for _ in 0..5_000 {
                let spawn = pending == 0 || rng.next() % 100 < 55;
                if spawn {
                    // Mix of near (same tick), mid and far deadlines,
                    // spanning several level boundaries.
                    let horizon = match rng.next() % 4 {
                        0 => 1 << 10, // sub-tick
                        1 => 1 << 22, // a few ticks
                        2 => 1 << 28, // level-1/2 territory
                        _ => 1 << 36, // deep wheel
                    };
                    let at = Instant::from_nanos(now + rng.next() % horizon);
                    wheel.push(at, seq, seq);
                    model.push(at, seq, seq);
                    seq += 1;
                    pending += 1;
                } else {
                    let got = wheel.pop();
                    let want = model.pop();
                    assert_eq!(got, want, "seed {seed}");
                    now = got.unwrap().0.as_nanos();
                    pending -= 1;
                }
            }
            loop {
                let got = wheel.pop();
                let want = model.pop();
                assert_eq!(got, want, "seed {seed} (drain)");
                if got.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn tick_boundary_wraparound() {
        // Entries straddling every level's wrap boundary: one just below
        // and one just above each power-of-two tick boundary, plus the
        // slot-wrap lap where the level-0 window turns over.
        let mut w = TimerWheel::new();
        let mut model = HeapModel::default();
        let mut seq = 0;
        for level in 0..LEVELS as u32 {
            let bits = TICK_SHIFT + level * SLOT_BITS + SLOT_BITS - 1;
            if bits > 62 {
                break; // beyond the u64 nanosecond range
            }
            let boundary = 1u64 << bits;
            for at in [boundary - 1, boundary, boundary + 1] {
                let at = Instant::from_nanos(at);
                w.push(at, seq, seq);
                model.push(at, seq, seq);
                seq += 1;
            }
        }
        // A full level-0 lap: 2 × SLOTS consecutive ticks.
        for i in 0..(2 * SLOTS as u64) {
            let at = Instant::from_nanos(i << TICK_SHIFT | 7);
            w.push(at, seq, seq);
            model.push(at, seq, seq);
            seq += 1;
        }
        loop {
            let got = w.pop();
            assert_eq!(got, model.pop());
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn extreme_deadlines_fire_in_order() {
        // Deadlines near the top of the 64-bit nanosecond range land in
        // the highest levels and must still come out in order.
        let mut w = TimerWheel::new();
        let near = Instant::from_nanos(1 << 20);
        let huge = Instant::from_nanos(u64::MAX >> 2);
        let far = Instant::from_nanos(1 << 60);
        w.push(huge, 0, "huge");
        w.push(near, 1, "near");
        w.push(far, 2, "far");
        assert_eq!(w.pop(), Some((near, "near")));
        assert_eq!(w.pop(), Some((far, "far")));
        assert_eq!(w.pop(), Some((huge, "huge")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn peek_matches_pop_and_rearms_during_drain() {
        let mut w = TimerWheel::new();
        w.push(Instant::ZERO + Duration::from_millis(5), 0, 0u64);
        assert_eq!(w.peek_at(), Some(Instant::ZERO + Duration::from_millis(5)));
        let (at, _) = w.pop().unwrap();
        // Rearm relative to the popped deadline (the kernel's pattern).
        w.push(at + Duration::from_millis(1), 1, 1u64);
        w.push(at + Duration::from_nanos(1), 2, 2u64);
        assert_eq!(w.pop().unwrap().1, 2);
        assert_eq!(w.pop().unwrap().1, 1);
    }
}
