//! Export recorded traces as pcap files (classic libpcap format,
//! `LINKTYPE_RAW` — packets start at the IPv4 header), so simulated
//! exchanges open directly in Wireshark/tcpdump next to captures of the
//! real scanner.

use crate::trace::Trace;
use std::io::{self, Write};

/// Classic pcap magic (microsecond timestamps, native endian).
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_RAW: packet data begins with the IPv4/IPv6 header.
const LINKTYPE_RAW: u32 = 101;
/// Snap length: we always store whole datagrams.
const SNAPLEN: u32 = 65_535;

/// Serialize a trace into pcap bytes.
pub fn to_pcap_bytes(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + trace.len() * 64);
    // Global header.
    out.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&SNAPLEN.to_le_bytes());
    out.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
    // Records.
    for entry in trace.entries() {
        let nanos = entry.at.as_nanos();
        let secs = (nanos / 1_000_000_000) as u32;
        let micros = ((nanos % 1_000_000_000) / 1_000) as u32;
        let len = entry.bytes.len() as u32;
        out.extend_from_slice(&secs.to_le_bytes());
        out.extend_from_slice(&micros.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes()); // captured
        out.extend_from_slice(&len.to_le_bytes()); // original
        out.extend_from_slice(&entry.bytes);
    }
    out
}

/// Write a trace to any writer in pcap format.
pub fn write_pcap<W: Write>(trace: &Trace, mut writer: W) -> io::Result<()> {
    writer.write_all(&to_pcap_bytes(trace))
}

/// Write a trace to a file path.
pub fn save_pcap(trace: &Trace, path: &std::path::Path) -> io::Result<()> {
    write_pcap(trace, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Duration, Instant};
    use crate::trace::Dir;

    fn sample_trace() -> Trace {
        let mut trace = Trace::new();
        trace.record(Instant::ZERO, Dir::ScannerToHost, &[0x45, 0, 0, 20]);
        trace.record(
            Instant::ZERO + Duration::from_millis(1500),
            Dir::HostToScanner,
            &[0x45, 0, 0, 40, 9, 9],
        );
        trace
    }

    #[test]
    fn global_header_is_valid() {
        let bytes = to_pcap_bytes(&sample_trace());
        assert_eq!(&bytes[0..4], &PCAP_MAGIC.to_le_bytes());
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        assert_eq!(u16::from_le_bytes([bytes[6], bytes[7]]), 4);
        assert_eq!(
            u32::from_le_bytes(bytes[20..24].try_into().unwrap()),
            LINKTYPE_RAW
        );
    }

    #[test]
    fn records_carry_timestamps_and_lengths() {
        let bytes = to_pcap_bytes(&sample_trace());
        // First record header at offset 24.
        let r1 = &bytes[24..40];
        assert_eq!(u32::from_le_bytes(r1[0..4].try_into().unwrap()), 0);
        assert_eq!(u32::from_le_bytes(r1[8..12].try_into().unwrap()), 4);
        assert_eq!(u32::from_le_bytes(r1[12..16].try_into().unwrap()), 4);
        assert_eq!(&bytes[40..44], &[0x45, 0, 0, 20]);
        // Second record: 1.5 s → secs 1, micros 500000.
        let r2 = &bytes[44..60];
        assert_eq!(u32::from_le_bytes(r2[0..4].try_into().unwrap()), 1);
        assert_eq!(u32::from_le_bytes(r2[4..8].try_into().unwrap()), 500_000);
        assert_eq!(u32::from_le_bytes(r2[8..12].try_into().unwrap()), 6);
    }

    #[test]
    fn empty_trace_is_header_only() {
        let bytes = to_pcap_bytes(&Trace::new());
        assert_eq!(bytes.len(), 24);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("iw-netsim-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.pcap");
        save_pcap(&sample_trace(), &path).unwrap();
        let read = std::fs::read(&path).unwrap();
        assert_eq!(read, to_pcap_bytes(&sample_trace()));
        let _ = std::fs::remove_file(&path);
    }
}
