//! Virtual time: integer nanoseconds since simulation start.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

/// A span of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Instant {
    /// The simulation epoch.
    pub const ZERO: Instant = Instant(0);

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Construct from nanoseconds.
    pub const fn from_nanos(n: u64) -> Instant {
        Instant(n)
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`; saturates at zero.
    pub fn duration_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// From nanoseconds.
    pub const fn from_nanos(n: u64) -> Duration {
        Duration(n)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiply by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (used for jitter draws); negative clamps to 0.
    pub fn mul_f64(self, k: f64) -> Duration {
        if k <= 0.0 {
            Duration::ZERO
        } else {
            Duration((self.0 as f64 * k) as u64)
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}us", self.0 / 1000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Instant::ZERO + Duration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t - Instant::ZERO, Duration::from_millis(5));
        assert_eq!(Instant::ZERO - t, Duration::ZERO, "saturating");
        assert_eq!(
            Duration::from_secs(1) + Duration::from_micros(1),
            Duration::from_nanos(1_000_001_000)
        );
    }

    #[test]
    fn scaling() {
        assert_eq!(
            Duration::from_millis(10).saturating_mul(3),
            Duration::from_millis(30)
        );
        assert_eq!(
            Duration::from_millis(10).mul_f64(0.5),
            Duration::from_millis(5)
        );
        assert_eq!(Duration::from_millis(10).mul_f64(-1.0), Duration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
        assert_eq!(Duration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Duration::from_micros(7).to_string(), "7us");
        assert_eq!(Instant::from_nanos(1_500_000_000).to_string(), "1.500000s");
    }

    #[test]
    fn ordering() {
        assert!(Instant::from_nanos(1) < Instant::from_nanos(2));
        assert!(Duration::from_millis(1) < Duration::from_secs(1));
    }
}
