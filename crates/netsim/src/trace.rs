//! Packet traces — the simulator's stand-in for the tcpdump captures the
//! paper's authors "manually inspected" during validation (§3.5).
//!
//! A [`Trace`] records every datagram crossing the simulator with its
//! virtual timestamp and direction. The TCP-aware pretty-printer renders
//! the Figure 1 style message sequence, and tests make exact assertions
//! over the entries instead of eyeballing them.

use crate::time::Instant;
use core::fmt;

/// Direction of a recorded packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Scanner → host ("our scanner" column of Fig. 1).
    ScannerToHost,
    /// Host → scanner ("probed host" column).
    HostToScanner,
}

/// One recorded datagram.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Virtual capture time.
    pub at: Instant,
    /// Direction.
    pub dir: Dir,
    /// The raw IPv4 datagram.
    pub bytes: Vec<u8>,
}

/// An append-only packet capture.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Append an entry.
    pub fn record(&mut self, at: Instant, dir: Dir, bytes: &[u8]) {
        self.entries.push(TraceEntry {
            at,
            dir,
            bytes: bytes.to_vec(),
        });
    }

    /// All entries in capture order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fold another capture into this one, restoring global time order
    /// (used when merging per-shard scan traces; the sort is stable, so
    /// same-instant packets keep their per-shard capture order).
    pub fn merge(&mut self, other: &Trace) {
        self.entries.extend_from_slice(&other.entries);
        self.entries.sort_by_key(|e| e.at);
    }

    /// Render a Fig.-1-style, TCP-aware message sequence chart.
    ///
    /// Lines look like:
    /// `0.020000s  ->  SYN        seq=1234 ack=0 win=65535 len=0 [MSS=64]`
    pub fn render_tcp(&self) -> String {
        let mut out = String::new();
        out.push_str("time        dir  flags      details\n");
        for e in &self.entries {
            let arrow = match e.dir {
                Dir::ScannerToHost => "-> ",
                Dir::HostToScanner => "<- ",
            };
            out.push_str(&format!("{}  {arrow}  {}\n", e.at, summarize_tcp(&e.bytes)));
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_tcp())
    }
}

/// One-line summary of a (possibly non-TCP) IPv4 datagram.
fn summarize_tcp(bytes: &[u8]) -> String {
    use iw_wire::{ipv4, tcp, IpProtocol};
    let Ok(ip) = ipv4::Packet::new_checked(bytes) else {
        return format!("<non-ip {} bytes>", bytes.len());
    };
    match ip.protocol() {
        IpProtocol::Tcp => {
            let Ok(seg) = tcp::Packet::new_checked(ip.payload()) else {
                return "<bad tcp>".into();
            };
            let mut opts = String::new();
            for opt in seg.options().flatten() {
                if let tcp::TcpOption::Mss(mss) = opt {
                    opts = format!(" [MSS={mss}]");
                }
            }
            format!(
                "{:<9} seq={} ack={} win={} len={}{}",
                seg.flags().to_string(),
                seg.seq_number(),
                seg.ack_number(),
                seg.window(),
                seg.payload().len(),
                opts
            )
        }
        IpProtocol::Icmp => format!("ICMP ({} bytes)", ip.payload().len()),
        IpProtocol::Unknown(p) => format!("proto {p} ({} bytes)", ip.payload().len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_wire::ipv4::Ipv4Addr;
    use iw_wire::{ipv4, tcp};

    fn tcp_datagram() -> Vec<u8> {
        let seg = tcp::Repr {
            src_port: 40000,
            dst_port: 80,
            seq: 100,
            ack: 0,
            flags: tcp::Flags::SYN,
            window: 65535,
            options: vec![tcp::TcpOption::Mss(64)],
            payload: vec![],
        };
        let src = Ipv4Addr::new(192, 0, 2, 1);
        let dst = Ipv4Addr::new(198, 51, 100, 1);
        let l4 = seg.emit(src, dst);
        ipv4::build_datagram(
            &ipv4::Repr {
                src_addr: src,
                dst_addr: dst,
                protocol: iw_wire::IpProtocol::Tcp,
                payload_len: l4.len(),
                ttl: 64,
            },
            1,
            &l4,
        )
    }

    #[test]
    fn records_and_renders() {
        let mut trace = Trace::new();
        trace.record(Instant::ZERO, Dir::ScannerToHost, &tcp_datagram());
        assert_eq!(trace.len(), 1);
        let rendered = trace.render_tcp();
        assert!(rendered.contains("SYN"), "{rendered}");
        assert!(rendered.contains("[MSS=64]"), "{rendered}");
        assert!(rendered.contains("->"), "{rendered}");
    }

    #[test]
    fn tolerates_garbage_bytes() {
        let mut trace = Trace::new();
        trace.record(Instant::ZERO, Dir::HostToScanner, &[1, 2, 3]);
        assert!(trace.render_tcp().contains("<non-ip"));
    }

    #[test]
    fn merge_restores_time_order() {
        let mut a = Trace::new();
        a.record(Instant::from_nanos(30), Dir::ScannerToHost, &[1]);
        a.record(Instant::from_nanos(50), Dir::HostToScanner, &[2]);
        let mut b = Trace::new();
        b.record(Instant::from_nanos(10), Dir::ScannerToHost, &[3]);
        b.record(Instant::from_nanos(40), Dir::HostToScanner, &[4]);
        a.merge(&b);
        let times: Vec<u64> = a.entries().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(times, vec![10, 30, 40, 50]);
    }

    #[test]
    fn empty_trace() {
        let trace = Trace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.render_tcp().lines().count(), 1, "header only");
    }
}
