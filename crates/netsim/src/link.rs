//! Link impairment model.
//!
//! Every scanner↔host path gets its own [`Link`], seeded deterministically
//! from the scan seed and the host address, so results do not depend on
//! event interleaving across hosts. The model mirrors what the paper's
//! validation uses NetEM for: delay, jitter, random loss — and adds
//! scripted per-index drops so tests can hit *exact* packets (e.g. "drop
//! the last data segment" = tail loss).

use crate::time::Duration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Static description of a path's behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub latency: Duration,
    /// Maximum additional random delay per packet (uniform in `[0, jitter]`).
    /// Jitter larger than the inter-packet gap produces genuine reordering.
    pub jitter: Duration,
    /// Independent per-packet loss probability in `[0, 1]`.
    pub loss: f64,
    /// Independent per-packet duplication probability in `[0, 1]`.
    pub dup: f64,
    /// Scripted drops on the scanner→host direction: 0-based packet
    /// indexes silently discarded regardless of `loss`.
    pub drops_fwd: Vec<u64>,
    /// Scripted drops on the host→scanner direction — this is how tests
    /// inflict *exact* tail loss on the server's IW flight.
    pub drops_rev: Vec<u64>,
    /// Drop every scanner→host packet from this 0-based index on — the
    /// path "goes dark" mid-conversation (route flap, middlebox).
    pub blackhole_fwd_after: Option<u64>,
    /// Drop every host→scanner packet from this 0-based index on.
    pub blackhole_rev_after: Option<u64>,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: Duration::from_millis(20),
            jitter: Duration::ZERO,
            loss: 0.0,
            dup: 0.0,
            drops_fwd: Vec::new(),
            drops_rev: Vec::new(),
            blackhole_fwd_after: None,
            blackhole_rev_after: None,
        }
    }
}

impl LinkConfig {
    /// A clean low-latency testbed link (validation experiments, §3.5).
    pub fn testbed() -> Self {
        LinkConfig {
            latency: Duration::from_millis(1),
            ..LinkConfig::default()
        }
    }

    /// A lossy link à la `netem loss <pct>%`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Add jitter.
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Script an exact scanner→host packet drop (0-based index).
    pub fn with_forward_drop(mut self, index: u64) -> Self {
        self.drops_fwd.push(index);
        self
    }

    /// Script an exact host→scanner packet drop (0-based index).
    pub fn with_reverse_drop(mut self, index: u64) -> Self {
        self.drops_rev.push(index);
        self
    }

    /// Black-hole the scanner→host direction from packet `index` on.
    pub fn with_forward_blackhole_after(mut self, index: u64) -> Self {
        self.blackhole_fwd_after = Some(index);
        self
    }

    /// Black-hole the host→scanner direction from packet `index` on.
    pub fn with_reverse_blackhole_after(mut self, index: u64) -> Self {
        self.blackhole_rev_after = Some(index);
        self
    }
}

/// Arrival delays for one transit: zero (dropped), one, or two (the
/// duplication path) — stored inline so the per-packet routing path
/// never touches the heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Arrivals {
    delays: [Duration; 2],
    len: u8,
}

impl Arrivals {
    fn push(&mut self, delay: Duration) {
        if usize::from(self.len) < 2 {
            self.delays[usize::from(self.len)] = delay;
            self.len += 1;
        }
    }

    /// The delays as a slice (also available through `Deref`).
    pub fn as_slice(&self) -> &[Duration] {
        &self.delays[..usize::from(self.len)]
    }
}

impl std::ops::Deref for Arrivals {
    type Target = [Duration];
    fn deref(&self) -> &[Duration] {
        self.as_slice()
    }
}

impl IntoIterator for Arrivals {
    type Item = Duration;
    type IntoIter = std::iter::Take<std::array::IntoIter<Duration, 2>>;
    fn into_iter(self) -> Self::IntoIter {
        self.delays.into_iter().take(usize::from(self.len))
    }
}

/// Per-direction transit state.
#[derive(Debug)]
struct DirState {
    sent: u64,
    rng: SmallRng,
}

/// A live link between the scanner and one host.
#[derive(Debug)]
pub struct Link {
    config: LinkConfig,
    fwd: DirState,
    rev: DirState,
}

/// The two directions across a link, from the scanner's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Scanner → host.
    Forward,
    /// Host → scanner.
    Reverse,
}

impl Link {
    /// Instantiate a link with a deterministic per-path seed.
    pub fn new(config: LinkConfig, seed: u64) -> Link {
        Link {
            config,
            fwd: DirState {
                sent: 0,
                rng: SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            },
            rev: DirState {
                sent: 0,
                rng: SmallRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d),
            },
        }
    }

    /// Pass one packet through the link.
    ///
    /// Returns the extra delays (relative to "now") at which copies arrive:
    /// empty = lost, one entry = normal, two = duplicated.
    pub fn transit(&mut self, dir: Direction) -> Arrivals {
        let config = &self.config;
        let (st, drops, blackhole) = match dir {
            Direction::Forward => (&mut self.fwd, &config.drops_fwd, config.blackhole_fwd_after),
            Direction::Reverse => (&mut self.rev, &config.drops_rev, config.blackhole_rev_after),
        };
        let index = st.sent;
        st.sent += 1;

        if blackhole.is_some_and(|after| index >= after) {
            return Arrivals::default();
        }
        if drops.contains(&index) {
            return Arrivals::default();
        }
        if config.loss > 0.0 && st.rng.gen::<f64>() < config.loss {
            return Arrivals::default();
        }
        let mut arrivals = Arrivals::default();
        let jitter = if config.jitter > Duration::ZERO {
            config.jitter.mul_f64(st.rng.gen::<f64>())
        } else {
            Duration::ZERO
        };
        arrivals.push(config.latency + jitter);
        if config.dup > 0.0 && st.rng.gen::<f64>() < config.dup {
            let jitter2 = config.jitter.mul_f64(st.rng.gen::<f64>());
            arrivals.push(config.latency + jitter2 + Duration::from_micros(50));
        }
        arrivals
    }

    /// The static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_link_delivers_everything_in_order() {
        let mut link = Link::new(LinkConfig::testbed(), 1);
        for _ in 0..100 {
            let arr = link.transit(Direction::Forward);
            assert_eq!(arr.as_slice(), &[Duration::from_millis(1)]);
        }
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut link = Link::new(LinkConfig::default().with_loss(1.0), 2);
        for _ in 0..50 {
            assert!(link.transit(Direction::Reverse).is_empty());
        }
    }

    #[test]
    fn scripted_drop_hits_exact_index() {
        let mut link = Link::new(LinkConfig::testbed().with_forward_drop(2), 3);
        assert!(!link.transit(Direction::Forward).is_empty());
        assert!(!link.transit(Direction::Forward).is_empty());
        assert!(
            link.transit(Direction::Forward).is_empty(),
            "index 2 dropped"
        );
        assert!(!link.transit(Direction::Forward).is_empty());
        // Directions are independent: a forward drop leaves reverse alone.
        let mut link = Link::new(LinkConfig::testbed().with_forward_drop(0), 3);
        assert!(link.transit(Direction::Forward).is_empty());
        assert!(!link.transit(Direction::Reverse).is_empty());
        let mut link = Link::new(LinkConfig::testbed().with_reverse_drop(0), 3);
        assert!(!link.transit(Direction::Forward).is_empty());
        assert!(link.transit(Direction::Reverse).is_empty());
    }

    #[test]
    fn blackhole_kills_direction_from_index() {
        let mut link = Link::new(LinkConfig::testbed().with_reverse_blackhole_after(2), 5);
        assert!(!link.transit(Direction::Reverse).is_empty());
        assert!(!link.transit(Direction::Reverse).is_empty());
        for _ in 0..10 {
            assert!(link.transit(Direction::Reverse).is_empty());
        }
        // The other direction is unaffected.
        for _ in 0..10 {
            assert!(!link.transit(Direction::Forward).is_empty());
        }
    }

    #[test]
    fn loss_rate_statistically_plausible() {
        let mut link = Link::new(LinkConfig::default().with_loss(0.3), 42);
        let delivered = (0..10_000)
            .filter(|_| !link.transit(Direction::Forward).is_empty())
            .count();
        assert!((6500..7500).contains(&delivered), "got {delivered}");
    }

    #[test]
    fn duplication_produces_two_arrivals() {
        let mut cfg = LinkConfig::testbed();
        cfg.dup = 1.0;
        let mut link = Link::new(cfg, 7);
        let arr = link.transit(Direction::Forward);
        assert_eq!(arr.len(), 2);
        assert!(arr[1] > arr[0]);
    }

    #[test]
    fn jitter_varies_delay_within_bounds() {
        let cfg = LinkConfig::default().with_jitter(Duration::from_millis(10));
        let mut link = Link::new(cfg, 9);
        let mut seen_distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            let arr = link.transit(Direction::Forward);
            let d = arr[0];
            assert!(d >= Duration::from_millis(20));
            assert!(d <= Duration::from_millis(30));
            seen_distinct.insert(d.as_nanos());
        }
        assert!(seen_distinct.len() > 10, "jitter should vary");
    }

    #[test]
    fn same_seed_same_behaviour() {
        let cfg = LinkConfig::default().with_loss(0.5);
        let mut a = Link::new(cfg.clone(), 1234);
        let mut b = Link::new(cfg, 1234);
        for _ in 0..200 {
            assert_eq!(a.transit(Direction::Forward), b.transit(Direction::Forward));
        }
    }
}
