//! The discrete-event simulation kernel.
//!
//! Topology is a star: one *scanner* endpoint in the middle, and one lazily
//! instantiated *host* endpoint per probed IPv4 address, each behind its
//! own impaired [`Link`]. That is exactly the world an Internet-wide
//! scanner sees — it never observes host↔host traffic.
//!
//! Hosts are spawned by a [`HostFactory`] on the first packet addressed to
//! them and torn down when they declare themselves finished, so a scan of
//! millions of addresses only keeps live connections in memory.

use crate::link::{Direction, Link, LinkConfig};
use crate::time::{Duration, Instant};
use crate::trace::{Dir, Trace};
use crate::wheel::TimerWheel;
use iw_telemetry::trace::Tracer;
use iw_wire::pool::{BufferPool, Packet, PacketBuf, PoolStats};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Opaque timer identifier, namespaced per endpoint; endpoints must treat
/// stale timers (state moved on) as no-ops — there is no cancellation.
pub type TimerToken = u64;

/// Multiplicative hasher for `u32` address keys: the kernel and the
/// scanner look an address up in several tables per packet, and the
/// default SipHash costs more than the rest of the lookup. Addresses in
/// the simulation are not attacker-controlled, so a single 64-bit mix
/// (SplitMix64's finalizer multiplier) is enough.
#[derive(Debug, Default)]
pub struct AddrHasher(u64);

impl Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); address keys use `write_u32` below.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u32(&mut self, v: u32) {
        let mut x = (self.0 << 32) ^ u64::from(v) ^ 0x9e37_79b9_7f4a_7c15;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = x ^ (x >> 31);
    }
}

/// A `HashMap` keyed by host-order IPv4 address, using [`AddrHasher`].
pub type AddrMap<V> = HashMap<u32, V, BuildHasherDefault<AddrHasher>>;

/// What an endpoint wants done after handling an event.
#[derive(Debug, Default)]
pub struct Effects {
    /// IPv4 datagrams to transmit (routed by destination address).
    pub tx: Vec<Packet>,
    /// Timers to arm, as (delay, token).
    pub timers: Vec<(Duration, TimerToken)>,
    /// The endpoint is done and may be deallocated (hosts only; the
    /// scanner ignores this flag).
    pub finished: bool,
    /// The buffer pool emissions should draw from. `Effects::default()`
    /// gives a private pool (tests, standalone endpoints); the kernel
    /// hands every endpoint a handle to the simulation's shared pool.
    pool: BufferPool,
}

impl Effects {
    /// Effects drawing buffers from `pool` (the kernel's constructor).
    pub fn with_pool(pool: BufferPool) -> Effects {
        Effects {
            tx: Vec::new(),
            timers: Vec::new(),
            finished: false,
            pool,
        }
    }

    /// Check out a recycled packet buffer to emit into; send the frozen
    /// result with [`Effects::send`].
    pub fn buffer(&self) -> PacketBuf {
        self.pool.take()
    }

    /// Queue a datagram for transmission (a frozen [`PacketBuf`], or a
    /// plain `Vec<u8>` on cold/compatibility paths).
    pub fn send(&mut self, pkt: impl Into<Packet>) {
        self.tx.push(pkt.into());
    }

    /// Arm a timer.
    pub fn arm(&mut self, delay: Duration, token: TimerToken) {
        self.timers.push((delay, token));
    }
}

/// A packet-handling actor: the scanner, or one simulated host.
pub trait Endpoint {
    /// An IPv4 datagram addressed to this endpoint arrived.
    fn on_packet(&mut self, pkt: &[u8], now: Instant, fx: &mut Effects);
    /// A previously armed timer fired.
    fn on_timer(&mut self, token: TimerToken, now: Instant, fx: &mut Effects);
}

/// Creates host endpoints on demand.
pub trait HostFactory {
    /// Instantiate the host behind `ip` (host-order address), or `None` if
    /// the address is unrouted (the packet disappears, like on the real
    /// Internet).
    fn create(&mut self, ip: u32) -> Option<(Box<dyn Endpoint>, LinkConfig)>;
}

/// Blanket impl so closures can serve as factories in tests.
impl<F> HostFactory for F
where
    F: FnMut(u32) -> Option<(Box<dyn Endpoint>, LinkConfig)>,
{
    fn create(&mut self, ip: u32) -> Option<(Box<dyn Endpoint>, LinkConfig)> {
        self(ip)
    }
}

/// Kernel tuning and accounting options.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    /// Seed mixed into every per-link RNG.
    pub seed: u64,
    /// Record a packet trace (validation runs only; costs memory).
    pub record_trace: bool,
    /// Profile the event loop: record shard-scoped spans (timer-wheel
    /// advances, packet fan-out batches) into the kernel's [`Tracer`].
    pub profile: bool,
}

/// Aggregate statistics, the raw material of the §3.4 efficiency numbers.
///
/// Stats from independent shard simulations combine with `+=` (see
/// [`std::ops::AddAssign`] below): every field is a sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Datagrams the scanner transmitted.
    pub scanner_tx: u64,
    /// Datagrams delivered to the scanner.
    pub scanner_rx: u64,
    /// Datagrams hosts transmitted.
    pub host_tx: u64,
    /// Datagrams delivered to hosts.
    pub host_rx: u64,
    /// Datagrams lost on links (either direction).
    pub lost: u64,
    /// Bytes the scanner transmitted.
    pub scanner_tx_bytes: u64,
    /// Bytes delivered to the scanner.
    pub scanner_rx_bytes: u64,
    /// Host endpoints spawned.
    pub hosts_spawned: u64,
    /// Events processed.
    pub events: u64,
    /// Fresh slabs the packet-buffer pool allocated (lifetime total).
    pub pool_allocations: u64,
    /// Buffers the pool recycled through the free list instead of
    /// allocating (lifetime total).
    pub pool_recycled: u64,
    /// Pool buffers checked out and not yet returned. Zero once a scan
    /// drains; anything else is a leak.
    pub pool_outstanding: u64,
}

impl std::ops::AddAssign for SimStats {
    fn add_assign(&mut self, rhs: SimStats) {
        self.scanner_tx += rhs.scanner_tx;
        self.scanner_rx += rhs.scanner_rx;
        self.host_tx += rhs.host_tx;
        self.host_rx += rhs.host_rx;
        self.lost += rhs.lost;
        self.scanner_tx_bytes += rhs.scanner_tx_bytes;
        self.scanner_rx_bytes += rhs.scanner_rx_bytes;
        self.hosts_spawned += rhs.hosts_spawned;
        self.events += rhs.events;
        self.pool_allocations += rhs.pool_allocations;
        self.pool_recycled += rhs.pool_recycled;
        self.pool_outstanding += rhs.pool_outstanding;
    }
}

#[derive(Debug)]
enum EventKind {
    ToHost { ip: u32, pkt: Packet },
    ToScanner { pkt: Packet },
    HostTimer { ip: u32, token: TimerToken },
    ScannerTimer { token: TimerToken },
}

struct HostSlot {
    endpoint: Box<dyn Endpoint>,
}

/// The simulation: one scanner endpoint `S`, hosts from factory `F`.
pub struct Sim<S: Endpoint, F: HostFactory> {
    scanner: S,
    factory: F,
    config: SimConfig,
    now: Instant,
    queue: TimerWheel<EventKind>,
    next_seq: u64,
    hosts: AddrMap<HostSlot>,
    /// Links persist across host despawn/respawn: the network path (and
    /// its loss-process state, including scripted drop counters) exists
    /// independently of whether the endpoint is in memory.
    links: AddrMap<Link>,
    /// Shared packet-buffer arena every endpoint emits into; buffers
    /// recycle through the free list instead of hitting the allocator.
    pool: BufferPool,
    stats: SimStats,
    trace: Trace,
    /// Hot-path span tracer (enabled by [`SimConfig::profile`]).
    tracer: Tracer,
}

impl<S: Endpoint, F: HostFactory> Sim<S, F> {
    /// Build a simulation around a scanner and a host factory.
    pub fn new(scanner: S, factory: F, config: SimConfig) -> Self {
        let tracer = Tracer::new(config.profile);
        Sim {
            scanner,
            factory,
            config,
            now: Instant::ZERO,
            queue: TimerWheel::new(),
            next_seq: 0,
            hosts: AddrMap::default(),
            links: AddrMap::default(),
            pool: BufferPool::new(),
            stats: SimStats::default(),
            trace: Trace::new(),
            tracer,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Accumulated statistics, including the pool counters as of now.
    pub fn stats(&self) -> SimStats {
        let mut stats = self.stats;
        let pool = self.pool.stats();
        stats.pool_allocations = pool.allocated;
        stats.pool_recycled = pool.recycled;
        stats.pool_outstanding = pool.outstanding;
        stats
    }

    /// Raw counters from the shared packet-buffer pool (leak checks).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The recorded trace (empty unless `record_trace` was set).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The hot-path span tracer (empty unless `profile` was set).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Take the span tracer out of the kernel (for merging into the
    /// scan-level trace at harvest time).
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Immutable access to the scanner endpoint (for result harvesting).
    pub fn scanner(&self) -> &S {
        &self.scanner
    }

    /// Mutable access to the scanner endpoint.
    pub fn scanner_mut(&mut self) -> &mut S {
        &mut self.scanner
    }

    /// Number of live host endpoints (diagnostic).
    pub fn live_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Invoke the scanner directly (e.g. to start the scan) and apply the
    /// effects it produces.
    pub fn kick_scanner(&mut self, f: impl FnOnce(&mut S, Instant, &mut Effects)) {
        let mut fx = Effects::with_pool(self.pool.clone());
        f(&mut self.scanner, self.now, &mut fx);
        self.apply_scanner_effects(fx);
    }

    fn schedule(&mut self, delay: Duration, kind: EventKind) {
        self.queue.push(self.now + delay, self.next_seq, kind);
        self.next_seq += 1;
    }

    fn apply_scanner_effects(&mut self, fx: Effects) {
        for (delay, token) in fx.timers {
            self.schedule(delay, EventKind::ScannerTimer { token });
        }
        // A multi-packet batch is the fan-out hot path (pacing grants);
        // single replies are too common to be worth a span each.
        if self.tracer.is_enabled() && fx.tx.len() >= 2 {
            self.tracer
                .instant_shard(self.now.as_nanos(), 0, "sim.fanout", fx.tx.len() as u64);
        }
        for pkt in fx.tx {
            self.route_from_scanner(pkt);
        }
    }

    fn apply_host_effects(&mut self, ip: u32, fx: Effects) {
        if fx.finished {
            self.hosts.remove(&ip);
        } else {
            for (delay, token) in fx.timers {
                self.schedule(delay, EventKind::HostTimer { ip, token });
            }
        }
        for pkt in fx.tx {
            self.route_from_host(ip, pkt);
        }
    }

    fn route_from_scanner(&mut self, pkt: Packet) {
        self.stats.scanner_tx += 1;
        self.stats.scanner_tx_bytes += pkt.len() as u64;
        // Destination address straight out of the IPv4 header; a full parse
        // happens at the receiving endpoint.
        let Some(dst) = dst_addr(&pkt) else {
            self.stats.lost += 1;
            return;
        };
        if self.config.record_trace {
            self.trace.record(self.now, Dir::ScannerToHost, &pkt);
        }
        if !self.hosts.contains_key(&dst) && !self.spawn_host(dst) {
            self.stats.lost += 1;
            return;
        }
        // `spawn_host` just succeeded, so the link exists; a miss would be
        // simulator corruption, but counting the packet as lost keeps the
        // run alive and visible in the stats instead of aborting.
        let Some(link) = self.links.get_mut(&dst) else {
            self.stats.lost += 1;
            return;
        };
        let arrivals = link.transit(Direction::Forward);
        if arrivals.is_empty() {
            self.stats.lost += 1;
        }
        for delay in arrivals {
            self.schedule(
                delay,
                EventKind::ToHost {
                    ip: dst,
                    pkt: pkt.clone(),
                },
            );
        }
    }

    fn route_from_host(&mut self, ip: u32, pkt: Packet) {
        self.stats.host_tx += 1;
        if self.config.record_trace {
            self.trace.record(self.now, Dir::HostToScanner, &pkt);
        }
        let Some(link) = self.links.get_mut(&ip) else {
            // No link was ever built (shouldn't happen for a live host);
            // deliver with a default delay rather than lose the packet.
            self.schedule(LinkConfig::default().latency, EventKind::ToScanner { pkt });
            return;
        };
        let arrivals = link.transit(Direction::Reverse);
        if arrivals.is_empty() {
            self.stats.lost += 1;
        }
        for delay in arrivals {
            self.schedule(delay, EventKind::ToScanner { pkt: pkt.clone() });
        }
    }

    /// Instantiate (or re-instantiate) the host at `ip`; the link is
    /// created once and kept for the lifetime of the simulation.
    fn spawn_host(&mut self, ip: u32) -> bool {
        match self.factory.create(ip) {
            Some((endpoint, link_config)) => {
                self.links
                    .entry(ip)
                    .or_insert_with(|| Link::new(link_config, self.config.seed ^ u64::from(ip)));
                self.hosts.insert(ip, HostSlot { endpoint });
                self.stats.hosts_spawned += 1;
                true
            }
            None => false,
        }
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time must not run backwards");
        if self.tracer.is_enabled() && at > self.now {
            // The wheel advanced: idle virtual time between events. The
            // arg carries the index of the event that ended the gap.
            self.tracer.record_shard(
                self.now.as_nanos(),
                at.as_nanos(),
                0,
                "wheel.advance",
                self.stats.events,
            );
        }
        self.now = at;
        self.stats.events += 1;
        match kind {
            EventKind::ToScanner { pkt } => {
                self.stats.scanner_rx += 1;
                self.stats.scanner_rx_bytes += pkt.len() as u64;
                let mut fx = Effects::with_pool(self.pool.clone());
                self.scanner.on_packet(&pkt, self.now, &mut fx);
                self.apply_scanner_effects(fx);
            }
            EventKind::ScannerTimer { token } => {
                let mut fx = Effects::with_pool(self.pool.clone());
                self.scanner.on_timer(token, self.now, &mut fx);
                self.apply_scanner_effects(fx);
            }
            EventKind::ToHost { ip, pkt } => {
                // A despawned host is a memory optimization, not a
                // semantic statement: a packet already in flight when the
                // host idled out must still find it, so respawn on demand
                // (host state is a pure function of the address).
                if !self.hosts.contains_key(&ip) {
                    self.spawn_host(ip);
                }
                if let Some(slot) = self.hosts.get_mut(&ip) {
                    self.stats.host_rx += 1;
                    let mut fx = Effects::with_pool(self.pool.clone());
                    slot.endpoint.on_packet(&pkt, self.now, &mut fx);
                    self.apply_host_effects(ip, fx);
                }
            }
            EventKind::HostTimer { ip, token } => {
                if let Some(slot) = self.hosts.get_mut(&ip) {
                    let mut fx = Effects::with_pool(self.pool.clone());
                    slot.endpoint.on_timer(token, self.now, &mut fx);
                    self.apply_host_effects(ip, fx);
                }
            }
        }
        true
    }

    /// Run until the event queue drains or `deadline` passes.
    ///
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: Instant) -> u64 {
        let mut n = 0;
        while let Some(at) = self.queue.peek_at() {
            if at > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        n
    }

    /// Run until the queue is completely empty.
    pub fn run_to_completion(&mut self) -> u64 {
        let mut n = 0;
        while self.step() {
            n += 1;
        }
        n
    }
}

fn dst_addr(pkt: &[u8]) -> Option<u32> {
    pkt.get(16..20)
        .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_wire_shim::*;

    /// Minimal hand-rolled IPv4-ish datagrams for kernel tests: we only
    /// need a valid destination-address field at bytes 16..20.
    mod iw_wire_shim {
        pub fn fake_pkt(dst: u32, tag: u8) -> Vec<u8> {
            let mut pkt = vec![0u8; 21];
            pkt[16..20].copy_from_slice(&dst.to_be_bytes());
            pkt[20] = tag;
            pkt
        }
    }

    /// Host that echoes every packet back with the tag incremented.
    struct Echo {
        my_ip: u32,
        seen: u32,
    }

    impl Endpoint for Echo {
        fn on_packet(&mut self, pkt: &[u8], _now: Instant, fx: &mut Effects) {
            self.seen += 1;
            // Reply to the scanner: destination is "the scanner" which the
            // kernel routes by construction; we keep our IP in the header
            // so the test can identify the sender.
            fx.send(fake_pkt(self.my_ip, pkt[20] + 1));
        }
        fn on_timer(&mut self, _token: TimerToken, _now: Instant, _fx: &mut Effects) {}
    }

    /// Scanner that sends one packet to each of `targets` when kicked and
    /// records replies.
    #[derive(Default)]
    struct TestScanner {
        replies: Vec<u8>,
        timer_fired: Vec<TimerToken>,
    }

    impl Endpoint for TestScanner {
        fn on_packet(&mut self, pkt: &[u8], _now: Instant, _fx: &mut Effects) {
            self.replies.push(pkt[20]);
        }
        fn on_timer(&mut self, token: TimerToken, _now: Instant, fx: &mut Effects) {
            self.timer_fired.push(token);
            if token == 7 {
                fx.arm(Duration::from_millis(1), 8);
            }
        }
    }

    fn echo_factory(ip: u32) -> Option<(Box<dyn Endpoint>, LinkConfig)> {
        if ip == 0xdead {
            None // unrouted
        } else {
            Some((Box::new(Echo { my_ip: ip, seen: 0 }), LinkConfig::testbed()))
        }
    }

    #[test]
    fn packet_round_trip_and_lazy_spawn() {
        let mut sim = Sim::new(TestScanner::default(), echo_factory, SimConfig::default());
        sim.kick_scanner(|_, _, fx| {
            fx.send(fake_pkt(1, 10));
            fx.send(fake_pkt(2, 20));
        });
        assert_eq!(sim.live_hosts(), 2, "hosts spawn on first packet");
        sim.run_to_completion();
        let mut replies = sim.scanner().replies.clone();
        replies.sort_unstable();
        assert_eq!(replies, vec![11, 21]);
        assert_eq!(sim.stats().hosts_spawned, 2);
        assert_eq!(sim.stats().scanner_tx, 2);
        assert_eq!(sim.stats().scanner_rx, 2);
    }

    #[test]
    fn unrouted_address_is_silently_dropped() {
        let mut sim = Sim::new(TestScanner::default(), echo_factory, SimConfig::default());
        sim.kick_scanner(|_, _, fx| fx.send(fake_pkt(0xdead, 1)));
        sim.run_to_completion();
        assert!(sim.scanner().replies.is_empty());
        assert_eq!(sim.stats().lost, 1);
        assert_eq!(sim.live_hosts(), 0);
    }

    #[test]
    fn timers_fire_in_order_and_can_rearm() {
        let mut sim = Sim::new(TestScanner::default(), echo_factory, SimConfig::default());
        sim.kick_scanner(|_, _, fx| {
            fx.arm(Duration::from_millis(5), 7);
            fx.arm(Duration::from_millis(1), 3);
        });
        sim.run_to_completion();
        assert_eq!(sim.scanner().timer_fired, vec![3, 7, 8]);
        assert_eq!(sim.now(), Instant::ZERO + Duration::from_millis(6));
    }

    #[test]
    fn finished_host_is_deallocated() {
        struct OneShot;
        impl Endpoint for OneShot {
            fn on_packet(&mut self, _pkt: &[u8], _now: Instant, fx: &mut Effects) {
                fx.finished = true;
            }
            fn on_timer(&mut self, _t: TimerToken, _n: Instant, _fx: &mut Effects) {}
        }
        let factory = |_ip: u32| {
            Some((
                Box::new(OneShot) as Box<dyn Endpoint>,
                LinkConfig::testbed(),
            ))
        };
        let mut sim = Sim::new(TestScanner::default(), factory, SimConfig::default());
        sim.kick_scanner(|_, _, fx| fx.send(fake_pkt(5, 0)));
        sim.run_to_completion();
        assert_eq!(sim.live_hosts(), 0);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Sim::new(TestScanner::default(), echo_factory, SimConfig::default());
        sim.kick_scanner(|_, _, fx| {
            fx.arm(Duration::from_millis(1), 1);
            fx.arm(Duration::from_secs(10), 2);
        });
        sim.run_until(Instant::ZERO + Duration::from_secs(1));
        assert_eq!(sim.scanner().timer_fired, vec![1]);
        sim.run_to_completion();
        assert_eq!(sim.scanner().timer_fired, vec![1, 2]);
    }

    #[test]
    fn deterministic_event_ordering_at_equal_times() {
        // Two packets to the same host with identical link delay must
        // arrive in send order (seq tiebreaker).
        struct Recorder {
            tags: Vec<u8>,
        }
        impl Endpoint for Recorder {
            fn on_packet(&mut self, pkt: &[u8], _n: Instant, _fx: &mut Effects) {
                self.tags.push(pkt[20]);
            }
            fn on_timer(&mut self, _t: TimerToken, _n: Instant, _fx: &mut Effects) {}
        }
        // Recorder lives inside the sim; observe via host_rx order using a
        // shared log.
        use std::cell::RefCell;
        use std::rc::Rc;
        let log = Rc::new(RefCell::new(Vec::new()));
        struct SharedRecorder(Rc<RefCell<Vec<u8>>>);
        impl Endpoint for SharedRecorder {
            fn on_packet(&mut self, pkt: &[u8], _n: Instant, _fx: &mut Effects) {
                self.0.borrow_mut().push(pkt[20]);
            }
            fn on_timer(&mut self, _t: TimerToken, _n: Instant, _fx: &mut Effects) {}
        }
        let log2 = log.clone();
        let factory = move |_ip: u32| {
            Some((
                Box::new(SharedRecorder(log2.clone())) as Box<dyn Endpoint>,
                LinkConfig::testbed(),
            ))
        };
        let mut sim = Sim::new(TestScanner::default(), factory, SimConfig::default());
        sim.kick_scanner(|_, _, fx| {
            for tag in 0..10 {
                fx.send(fake_pkt(1, tag));
            }
        });
        sim.run_to_completion();
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<u8>>());
        let _ = Recorder { tags: vec![] };
    }

    #[test]
    fn stats_add_assign_sums_every_field() {
        let mut a = SimStats {
            scanner_tx: 1,
            scanner_rx: 2,
            host_tx: 3,
            host_rx: 4,
            lost: 5,
            scanner_tx_bytes: 6,
            scanner_rx_bytes: 7,
            hosts_spawned: 8,
            events: 9,
            pool_allocations: 10,
            pool_recycled: 11,
            pool_outstanding: 12,
        };
        let b = SimStats {
            scanner_tx: 10,
            scanner_rx: 20,
            host_tx: 30,
            host_rx: 40,
            lost: 50,
            scanner_tx_bytes: 60,
            scanner_rx_bytes: 70,
            hosts_spawned: 80,
            events: 90,
            pool_allocations: 100,
            pool_recycled: 110,
            pool_outstanding: 120,
        };
        a += b;
        assert_eq!(
            a,
            SimStats {
                scanner_tx: 11,
                scanner_rx: 22,
                host_tx: 33,
                host_rx: 44,
                lost: 55,
                scanner_tx_bytes: 66,
                scanner_rx_bytes: 77,
                hosts_spawned: 88,
                events: 99,
                pool_allocations: 110,
                pool_recycled: 121,
                pool_outstanding: 132,
            }
        );
    }

    #[test]
    fn pool_buffers_return_after_the_run() {
        let mut sim = Sim::new(TestScanner::default(), echo_factory, SimConfig::default());
        sim.kick_scanner(|_, _, fx| {
            for tag in 0..8 {
                let mut buf = fx.buffer();
                buf.extend_from_slice(&fake_pkt(1, tag));
                fx.send(buf.freeze());
            }
        });
        sim.run_to_completion();
        let pool = sim.pool_stats();
        assert_eq!(pool.outstanding, 0, "every pooled buffer must come home");
        assert_eq!(pool.high_water, 8, "all eight buffers were out at once");
        let stats = sim.stats();
        assert_eq!(stats.pool_outstanding, 0);
        assert_eq!(
            stats.pool_allocations + stats.pool_recycled,
            8,
            "every checkout is either a fresh slab or a recycled one"
        );
    }

    #[test]
    fn profiling_records_hot_path_spans() {
        let config = SimConfig {
            profile: true,
            ..SimConfig::default()
        };
        let mut sim = Sim::new(TestScanner::default(), echo_factory, config);
        sim.kick_scanner(|_, _, fx| {
            fx.send(fake_pkt(1, 0));
            fx.send(fake_pkt(2, 0));
        });
        sim.run_to_completion();
        let names: Vec<&str> = sim.tracer().shard_spans().map(|s| s.name).collect();
        assert!(names.contains(&"sim.fanout"), "{names:?}");
        assert!(names.contains(&"wheel.advance"), "{names:?}");
        // Profiling off (the default): the tracer stays empty.
        let mut quiet = Sim::new(TestScanner::default(), echo_factory, SimConfig::default());
        quiet.kick_scanner(|_, _, fx| fx.send(fake_pkt(1, 0)));
        quiet.run_to_completion();
        assert!(quiet.take_tracer().is_empty());
    }

    #[test]
    fn trace_recording_captures_both_directions() {
        let config = SimConfig {
            record_trace: true,
            ..SimConfig::default()
        };
        let mut sim = Sim::new(TestScanner::default(), echo_factory, config);
        sim.kick_scanner(|_, _, fx| fx.send(fake_pkt(1, 0)));
        sim.run_to_completion();
        let trace = sim.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.entries()[0].dir, Dir::ScannerToHost);
        assert_eq!(trace.entries()[1].dir, Dir::HostToScanner);
    }
}
