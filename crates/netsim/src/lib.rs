//! # iw-netsim — deterministic virtual-time packet network
//!
//! The scanner in `iw-core` was designed to sit on a raw socket; in this
//! reproduction it sits on this simulator instead. The simulator is a
//! discrete-event kernel with:
//!
//! * a virtual clock ([`time::Instant`], [`time::Duration`]) — nanosecond
//!   integer arithmetic, no wall clock anywhere;
//! * an event queue ([`sim::Sim`]) delivering packets and timers in
//!   deterministic order (ties broken by insertion sequence), backed by a
//!   hierarchical timer wheel ([`wheel::TimerWheel`]) so scheduling stays
//!   O(1) amortized at millions of in-flight events;
//! * per-path link impairments ([`link::Link`]) — propagation delay,
//!   jitter, Bernoulli loss, duplication, plus scripted drops for exact
//!   tail-loss experiments (paper §3.5);
//! * packet traces ([`trace::Trace`]) standing in for the tcpdump captures
//!   the authors inspected manually — exportable as real pcap files
//!   ([`pcap`]) for Wireshark.
//!
//! Determinism is a design requirement, not an accident: the same seed
//! must reproduce byte-identical scan results so that the experiment
//! harness can diff against recorded expectations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod pcap;
pub mod sim;
pub mod time;
pub mod trace;
pub mod wheel;

pub use link::{Arrivals, Link, LinkConfig};
pub use sim::{AddrMap, Effects, Endpoint, HostFactory, Sim, SimConfig, TimerToken};
pub use time::{Duration, Instant};
pub use trace::{Dir, Trace, TraceEntry};
pub use wheel::TimerWheel;
