//! Property tests on the server stack: initial-flight invariants across
//! arbitrary IW policies, MSS values, OS personalities and data sizes.

use iw_hoststack::app::{App, AppResponse};
use iw_hoststack::tcb::Tcb;
use iw_hoststack::{HostConfig, HttpBehavior, HttpConfig, IwPolicy, OsProfile};
use iw_netsim::{Duration, Instant};
use iw_wire::ipv4::Ipv4Addr;
use iw_wire::tcp::{self, Flags, TcpOption};
use proptest::prelude::*;

const HOST: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
const SCAN: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

struct FixedApp {
    n: usize,
}
impl App for FixedApp {
    fn on_data(&mut self, _d: &[u8]) -> Option<AppResponse> {
        Some(AppResponse::send_and_close(vec![0x41; self.n]))
    }
}

fn arb_policy() -> impl Strategy<Value = IwPolicy> {
    prop_oneof![
        (1u32..80).prop_map(IwPolicy::Segments),
        (64u32..8000).prop_map(IwPolicy::Bytes),
        (512u32..4000).prop_map(IwPolicy::MtuFill),
        Just(IwPolicy::Rfc6928),
    ]
}

fn arb_os() -> impl Strategy<Value = OsProfile> {
    prop_oneof![
        Just(OsProfile::linux()),
        Just(OsProfile::windows()),
        Just(OsProfile::embedded()),
        Just(OsProfile::bsd()),
    ]
}

fn drive_handshake(
    os: OsProfile,
    iw: IwPolicy,
    data: usize,
    announced_mss: u16,
) -> (Tcb, Vec<tcp::Repr>) {
    let syn = tcp::Repr {
        src_port: 40000,
        dst_port: 80,
        seq: 1000,
        ack: 0,
        flags: Flags::SYN,
        window: 65535,
        options: vec![TcpOption::Mss(announced_mss)],
        payload: vec![],
    };
    let (mut tcb, _) = Tcb::accept(
        HOST,
        SCAN,
        80,
        40000,
        os,
        iw,
        Box::new(FixedApp { n: data }),
        &syn,
        5000,
        Instant::ZERO,
    );
    let req = tcp::Repr {
        src_port: 40000,
        dst_port: 80,
        seq: 1001,
        ack: 5001,
        flags: Flags::ACK | Flags::PSH,
        window: 65535,
        options: vec![],
        payload: b"GET / HTTP/1.1\r\n\r\n".to_vec(),
    };
    let out = tcb.on_segment(&req, Instant::ZERO + Duration::from_millis(1));
    (tcb, out.tx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The initial flight never exceeds the configured IW in bytes, and
    /// exactly fills it when enough data is available.
    #[test]
    fn initial_flight_respects_iw(
        os in arb_os(),
        iw in arb_policy(),
        data in 0usize..60_000,
        mss in prop_oneof![Just(64u16), Just(128u16), Just(536u16), Just(1460u16)],
    ) {
        let effective = os.effective_mss(Some(mss));
        let cwnd = iw.initial_cwnd(effective) as usize;
        let (_tcb, flight) = drive_handshake(os, iw, data, mss);
        let flight_bytes: usize = flight.iter().map(|s| s.payload.len()).sum();
        prop_assert!(flight_bytes <= cwnd, "flight {flight_bytes} > cwnd {cwnd}");
        prop_assert_eq!(flight_bytes, data.min(cwnd));
        // No data segment exceeds the effective MSS.
        for seg in &flight {
            prop_assert!(seg.payload.len() <= effective as usize);
        }
    }

    /// FIN appears in the initial flight iff the whole response fits in
    /// the initial window (the §3.2 exhaustion signal).
    #[test]
    fn fin_iff_data_fits(
        iw in arb_policy(),
        data in 1usize..20_000,
    ) {
        let os = OsProfile::linux();
        let cwnd = iw.initial_cwnd(os.effective_mss(Some(64))) as usize;
        let (_tcb, flight) = drive_handshake(os, iw, data, 64);
        let fin_in_flight = flight.iter().any(|s| s.flags.contains(Flags::FIN));
        prop_assert_eq!(fin_in_flight, data <= cwnd,
            "data {} cwnd {} fin {}", data, cwnd, fin_in_flight);
    }

    /// The flight's sequence numbers are contiguous from the ISS+1.
    #[test]
    fn flight_is_contiguous(
        iw in arb_policy(),
        data in 1usize..30_000,
    ) {
        let (_tcb, flight) = drive_handshake(OsProfile::linux(), iw, data, 64);
        let mut expected = 5001u32;
        for seg in &flight {
            prop_assert_eq!(seg.seq, expected);
            expected = expected.wrapping_add(seg.payload.len() as u32);
        }
    }

    /// The RTO always retransmits exactly the first unacked segment with
    /// identical payload, whatever the configuration.
    #[test]
    fn rto_retransmits_first_segment(
        iw in arb_policy(),
        data in 100usize..30_000,
    ) {
        let (mut tcb, flight) = drive_handshake(OsProfile::linux(), iw, data, 64);
        prop_assume!(!flight.is_empty());
        let out = tcb.on_timer(Instant::ZERO + Duration::from_secs(2));
        prop_assert_eq!(out.tx.len(), 1);
        prop_assert_eq!(out.tx[0].seq, flight[0].seq);
        prop_assert_eq!(&out.tx[0].payload, &flight[0].payload);
    }

    /// effective_mss is monotone in the peer's advertisement and never
    /// below the OS floor.
    #[test]
    fn effective_mss_monotone(os in arb_os(), a in 1u16..6000, b in 1u16..6000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(os.effective_mss(Some(lo)) <= os.effective_mss(Some(hi)));
        prop_assert!(os.effective_mss(Some(lo)) >= os.min_mss.min(536));
    }

    /// Host configs from the population builder always parse/serve:
    /// simple sanity that any policy yields a positive segment count.
    #[test]
    fn policies_always_admit_progress(iw in arb_policy(), mss in 1u32..9000) {
        prop_assert!(iw.initial_cwnd(mss) >= mss);
        prop_assert!(iw.initial_segments(mss) >= 1);
    }
}

#[test]
fn http_direct_host_end_to_end_segments() {
    // Deterministic cross-check of the property: IW 7 at MSS 64 with a
    // big page yields exactly 7 segments of 64 bytes.
    let mut host = HostConfig::simple_web(10_000);
    host.iw = IwPolicy::Segments(7);
    let _ = HttpConfig {
        behavior: HttpBehavior::Direct {
            root_size: 10_000,
            echo_404: true,
        },
        server_header: "x".into(),
        vhost_iw: Vec::new(),
    };
    let (_tcb, flight) = drive_handshake(OsProfile::linux(), IwPolicy::Segments(7), 10_000, 64);
    assert_eq!(flight.len(), 7);
    assert!(flight.iter().all(|s| s.payload.len() == 64));
}
