//! The simulated HTTP server application (§3.2's counterpart).
//!
//! Reproduces the response patterns the probe methodology is built
//! around: direct pages, `301` virtual-host redirects with a `Location`
//! worth following, URI-echoing `404` pages (the error-page-bloating
//! target), mute hosts and resetters. `Connection: close` is honored by
//! queueing a FIN behind the response — which is exactly the signal the
//! scanner uses to detect an unexhausted IW.

use crate::app::{App, AppResponse};
use crate::config::{HttpBehavior, HttpConfig};
use iw_wire::http::{Request, ResponseBuilder};
use iw_wire::Error;

/// One HTTP connection's application state.
pub struct HttpApp {
    config: HttpConfig,
    buffer: Vec<u8>,
}

impl HttpApp {
    /// New connection against this host config.
    pub fn new(config: HttpConfig) -> HttpApp {
        HttpApp {
            config,
            buffer: Vec::new(),
        }
    }

    fn respond(&self, req: &Request) -> AppResponse {
        let close = req
            .headers
            .iter()
            .any(|(k, v)| k.eq_ignore_ascii_case("connection") && v.eq_ignore_ascii_case("close"));
        // Configured properties (Akamai-style): a Host header naming a
        // known service serves that service's real content with its own
        // IW configuration — which is exactly why the paper's anonymous
        // scan cannot see these without a curated URL list (§4.3/§5).
        if let Some((_, policy)) = self
            .config
            .vhost_iw
            .iter()
            .find(|(host, _)| req.host.eq_ignore_ascii_case(host))
        {
            let (head, fill) = self.ok_page(12_000);
            let mut response = if close {
                AppResponse::send_and_close(head)
            } else {
                AppResponse::send(head)
            };
            response.fill = fill;
            response.iw_override = Some(*policy);
            return response;
        }
        let (resp, fill) = match &self.config.behavior {
            HttpBehavior::Direct {
                root_size,
                echo_404,
            } => {
                if req.uri == "/" {
                    self.ok_page(*root_size as usize)
                } else {
                    (self.not_found_page(64, *echo_404, &req.uri), 0)
                }
            }
            HttpBehavior::Redirect {
                host,
                path,
                target_size,
            } => {
                if req.uri == *path && (req.host == *host || req.host.is_empty()) {
                    self.ok_page(*target_size as usize)
                } else {
                    let moved = ResponseBuilder::new(301, "Moved Permanently")
                        .header("Server", &self.config.server_header)
                        .header("Location", format!("http://{host}{path}"))
                        .body(b"<html>Moved</html>".to_vec())
                        .build();
                    (moved, 0)
                }
            }
            HttpBehavior::NotFound {
                base_size,
                echo_uri,
            } => (
                self.not_found_page(*base_size as usize, *echo_uri, &req.uri),
                0,
            ),
            // The remaining variants are handled in on_data before parsing.
            HttpBehavior::Mute | HttpBehavior::SilentClose | HttpBehavior::Reset => {
                unreachable!("terminal behaviours never build responses") // iw-lint: allow(panic-budget)
            }
        };
        let mut response = if close {
            AppResponse::send_and_close(resp)
        } else {
            AppResponse::send(resp)
        };
        response.fill = fill;
        // Per-service IW (Akamai-style): the property named by the Host
        // header may carry its own initial-window configuration.
        response.iw_override = self
            .config
            .vhost_iw
            .iter()
            .find(|(host, _)| req.host.eq_ignore_ascii_case(host))
            .map(|(_, policy)| *policy);
        response
    }

    /// Head of a `200` whose body is `size` bytes of filler, returned as
    /// `(head, fill)`: the body itself is never built here — the TCB
    /// materializes it lazily as the peer's window pulls it, which is
    /// what makes multi-hundred-kilobyte pages free for a probe that
    /// resets after the initial flight.
    fn ok_page(&self, size: usize) -> (Vec<u8>, usize) {
        let head = ResponseBuilder::new(200, "OK")
            .header("Server", &self.config.server_header)
            .header("Content-Type", "text/html")
            .head_only(size);
        (head, size)
    }

    /// A 404 whose body optionally embeds the request URI — longer URIs
    /// beget longer error pages, the §3.2 bloating lever.
    fn not_found_page(&self, base: usize, echo: bool, uri: &str) -> Vec<u8> {
        const PREFIX: &[u8] = b"<html><body>404 Not Found";
        const SUFFIX: &[u8] = b"</body></html>";
        let body_len = PREFIX.len() + if echo { 2 + uri.len() } else { 0 } + base + SUFFIX.len();
        let mut out = ResponseBuilder::new(404, "Not Found")
            .header("Server", &self.config.server_header)
            .head(body_len);
        out.extend_from_slice(PREFIX);
        if echo {
            out.extend_from_slice(b": ");
            out.extend_from_slice(uri.as_bytes());
        }
        fill_into(&mut out, base);
        out.extend_from_slice(SUFFIX);
        out
    }
}

/// Append `n` bytes of deterministic printable filler in place.
///
/// Seeds one copy of the pattern, then doubles the filled region with
/// `extend_from_within` — O(log n) bulk copies instead of a bounds check
/// per pattern repetition. Every doubling source starts at `base` (cycle
/// position zero) and every extension lands on a pattern-aligned offset,
/// so the cyclic sequence is preserved byte for byte.
fn fill_into(out: &mut Vec<u8>, n: usize) {
    use crate::app::FILL_PATTERN as PATTERN;
    if n < PATTERN.len() {
        out.extend_from_slice(&PATTERN[..n]);
        return;
    }
    let base = out.len();
    let end = base + n;
    out.reserve(n);
    out.extend_from_slice(PATTERN);
    while out.len() < end {
        let written = out.len() - base;
        let take = written.min(end - out.len());
        out.extend_from_within(base..base + take);
    }
}

impl App for HttpApp {
    fn on_data(&mut self, data: &[u8]) -> Option<AppResponse> {
        match self.config.behavior {
            HttpBehavior::Mute => return None,
            HttpBehavior::SilentClose => return Some(AppResponse::silent_close()),
            HttpBehavior::Reset => return Some(AppResponse::abort()),
            _ => {}
        }
        self.buffer.extend_from_slice(data);
        match Request::parse(&self.buffer) {
            Ok(req) => Some(self.respond(&req)),
            Err(Error::Truncated) => None,
            // Unparseable request: behave like a grumpy server.
            Err(_) => Some(AppResponse::abort()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_wire::http::ResponseHead;

    fn cfg(behavior: HttpBehavior) -> HttpConfig {
        HttpConfig {
            behavior,
            server_header: "sim/1.0".into(),
            vhost_iw: Vec::new(),
        }
    }

    fn get(uri: &str, host: &str) -> Vec<u8> {
        Request::probe_get(uri, host).to_bytes()
    }

    #[test]
    fn direct_serves_root() {
        let mut app = HttpApp::new(cfg(HttpBehavior::Direct {
            root_size: 5000,
            echo_404: true,
        }));
        let resp = app.on_data(&get("/", "1.2.3.4")).unwrap();
        assert!(resp.close, "Connection: close honored");
        let head = ResponseHead::parse(&resp.data).unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(resp.data.len() + resp.fill - head.body_offset, 5000);
    }

    #[test]
    fn redirect_then_target() {
        let behavior = HttpBehavior::Redirect {
            host: "www.example.com".into(),
            path: "/index.html".into(),
            target_size: 9000,
        };
        let mut app = HttpApp::new(cfg(behavior.clone()));
        let resp = app.on_data(&get("/", "1.2.3.4")).unwrap();
        let head = ResponseHead::parse(&resp.data).unwrap();
        assert_eq!(head.status, 301);
        assert_eq!(
            head.redirect_location(),
            Some("http://www.example.com/index.html")
        );
        // Fresh connection, following the redirect with the right host.
        let mut app2 = HttpApp::new(cfg(behavior));
        let resp2 = app2
            .on_data(&get("/index.html", "www.example.com"))
            .unwrap();
        let head2 = ResponseHead::parse(&resp2.data).unwrap();
        assert_eq!(head2.status, 200);
        assert_eq!(resp2.data.len() + resp2.fill - head2.body_offset, 9000);
    }

    #[test]
    fn not_found_echoes_uri_making_page_grow() {
        let mut app = HttpApp::new(cfg(HttpBehavior::NotFound {
            base_size: 100,
            echo_uri: true,
        }));
        let short = app.on_data(&get("/x", "h")).unwrap().data.len();
        let mut app = HttpApp::new(cfg(HttpBehavior::NotFound {
            base_size: 100,
            echo_uri: true,
        }));
        let long_uri = format!("/{}", "a".repeat(1400));
        let long = app.on_data(&get(&long_uri, "h")).unwrap().data.len();
        assert!(long >= short + 1399, "URI echo must grow the page");
    }

    #[test]
    fn akamai_style_no_echo_keeps_page_small() {
        let mut app = HttpApp::new(cfg(HttpBehavior::NotFound {
            base_size: 100,
            echo_uri: false,
        }));
        let long_uri = format!("/{}", "a".repeat(1400));
        let resp = app.on_data(&get(&long_uri, "h")).unwrap();
        assert!(resp.data.len() < 400, "no echo: page stays small");
    }

    #[test]
    fn partial_request_buffers() {
        let mut app = HttpApp::new(cfg(HttpBehavior::Direct {
            root_size: 10,
            echo_404: true,
        }));
        let req = get("/", "h");
        let (a, b) = req.split_at(10);
        assert!(app.on_data(a).is_none());
        assert!(app.on_data(b).is_some());
    }

    #[test]
    fn terminal_behaviours() {
        let mut mute = HttpApp::new(cfg(HttpBehavior::Mute));
        assert!(mute.on_data(&get("/", "h")).is_none());
        let mut closer = HttpApp::new(cfg(HttpBehavior::SilentClose));
        assert_eq!(closer.on_data(b"x"), Some(AppResponse::silent_close()));
        let mut rster = HttpApp::new(cfg(HttpBehavior::Reset));
        assert_eq!(rster.on_data(b"x"), Some(AppResponse::abort()));
    }

    #[test]
    fn garbage_request_aborts() {
        let mut app = HttpApp::new(cfg(HttpBehavior::Direct {
            root_size: 10,
            echo_404: true,
        }));
        let resp = app.on_data(b"\xff\xfe garbage \r\n\r\n").unwrap();
        assert!(resp.reset);
    }

    #[test]
    fn vhost_iw_override_attached_on_host_match() {
        use iw_hoststack_policy_shim::IwPolicy;
        mod iw_hoststack_policy_shim {
            pub use crate::policy::IwPolicy;
        }
        let mut config = cfg(HttpBehavior::Direct {
            root_size: 5000,
            echo_404: true,
        });
        config.vhost_iw = vec![
            ("www.customer-a.example".into(), IwPolicy::Segments(16)),
            ("www.customer-b.example".into(), IwPolicy::Segments(32)),
        ];
        let mut app = HttpApp::new(config.clone());
        let resp = app.on_data(&get("/", "www.customer-b.example")).unwrap();
        assert_eq!(resp.iw_override, Some(IwPolicy::Segments(32)));
        // Case-insensitive match, unknown host gets the default.
        let mut app = HttpApp::new(config.clone());
        let resp = app.on_data(&get("/", "WWW.CUSTOMER-A.EXAMPLE")).unwrap();
        assert_eq!(resp.iw_override, Some(IwPolicy::Segments(16)));
        let mut app = HttpApp::new(config);
        let resp = app.on_data(&get("/", "1.2.3.4")).unwrap();
        assert_eq!(resp.iw_override, None);
    }

    #[test]
    fn keepalive_request_does_not_close() {
        let mut app = HttpApp::new(cfg(HttpBehavior::Direct {
            root_size: 10,
            echo_404: true,
        }));
        let req = b"GET / HTTP/1.1\r\nHost: h\r\n\r\n";
        let resp = app.on_data(req).unwrap();
        assert!(!resp.close, "no Connection: close header");
    }
}
