//! The server-side TCP connection state machine.
//!
//! This is a deliberately faithful implementation of the behaviours the
//! Padhye–Floyd-style inference depends on:
//!
//! * the initial flight is paced by `min(cwnd, peer window)` with
//!   `cwnd = IW(policy, effective MSS)`;
//! * an unacknowledged first segment is retransmitted after the RTO —
//!   the scanner's "end of IW" signal;
//! * a later cumulative ACK releases *new* data only if the application
//!   supplied more than the IW — the scanner's exhaustion check;
//! * a graceful close queues the FIN *behind* unsent data, so a FIN
//!   observed inside the initial flight proves the host ran out of data
//!   (§3.2's `Connection: close` trick);
//! * slow start grows cwnd on new ACKs (appropriate byte counting).
//!
//! Out-of-order data from the peer is not reassembled (the scanner only
//! ever sends tiny in-order requests); it is acknowledged at `rcv_nxt`
//! like any mainstream stack would (duplicate ACK).

use crate::app::{App, AppResponse};
use crate::os::OsProfile;
use crate::policy::IwPolicy;
use iw_netsim::{Duration, Instant};
use iw_wire::ipv4::Ipv4Addr;
use iw_wire::tcp::{self, seq, Flags, TcpOption};
use std::collections::VecDeque;

/// Connection lifecycle states (server side only; no active open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// SYN received, SYN-ACK sent, waiting for the final ACK.
    SynRcvd,
    /// Handshake complete.
    Established,
    /// FIN sent (after data drained), waiting for it to be acknowledged.
    FinWait,
    /// Connection finished or aborted; the TCB can be discarded.
    Closed,
}

/// Maximum RTO-backoff retransmissions before giving up.
const MAX_RETRIES: u32 = 6;

/// A segment in flight, kept for retransmission.
///
/// Payload bytes are not stored here: a segment is a `[start, start+len)`
/// window into the connection's flat `send_buf`, so queueing a response,
/// segmentizing it and retransmitting it all share one copy of the data.
#[derive(Debug, Clone, Copy)]
struct InflightSeg {
    seq: u32,
    start: usize,
    len: usize,
    fin: bool,
}

impl InflightSeg {
    fn seq_len(&self) -> u32 {
        self.len as u32 + u32::from(self.fin)
    }
}

/// Output of a TCB event: segments to emit and the next timer deadline.
#[derive(Debug, Default)]
pub struct TcbOutput {
    /// Segments to transmit, in order.
    pub tx: Vec<tcp::Repr>,
    /// Absolute deadline at which `on_timer` should be invoked (the host
    /// arms a simulator timer; stale timers are harmless).
    pub deadline: Option<Instant>,
}

/// The server-side transmission control block.
pub struct Tcb {
    // Immutable connection identity.
    local_addr: Ipv4Addr,
    peer_addr: Ipv4Addr,
    local_port: u16,
    peer_port: u16,

    os: OsProfile,
    app: Box<dyn App>,

    state: State,
    /// Effective MSS after OS quirk rules.
    mss: u32,
    /// Initial congestion window in bytes (recorded for diagnostics).
    iw_bytes: u32,

    // Sequence variables (RFC 793 names).
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    rcv_nxt: u32,
    peer_wnd: u32,

    // Congestion control.
    cwnd: u32,
    ssthresh: u32,

    // Send machinery: every byte the application has queued, in order.
    // `sent` marks the segmentation frontier; bytes before it are covered
    // by `inflight` windows until acknowledged. The buffer is retained
    // whole for the connection's (short) lifetime, so no per-segment
    // copies or shifts ever happen on this path.
    send_buf: Vec<u8>,
    sent: usize,
    /// Lazy tail: this many bytes of [`crate::app::FILL_PATTERN`] still
    /// owed behind `send_buf`, materialized only as the window pulls
    /// them ([`AppResponse::fill`]). `fill_base` is the offset where the
    /// current fill region's pattern cycle starts.
    fill_remaining: usize,
    fill_base: usize,
    inflight: VecDeque<InflightSeg>,
    close_pending: bool,
    fin_sent: bool,

    // Receive-side request assembly.
    rx_stream: Vec<u8>,

    // Retransmission state.
    rto: Duration,
    rto_deadline: Option<Instant>,
    retries: u32,
    /// The deadline the host last armed a simulator timer for; used to
    /// suppress duplicate timer arms (stale fires are no-ops anyway).
    armed: Option<Instant>,

    // Diagnostics.
    retransmit_count: u64,
}

impl Tcb {
    /// Accept a SYN: build the TCB and the SYN-ACK to send.
    ///
    /// `syn` must have the SYN flag; `isn` is the server's initial
    /// sequence number (chosen by the host's RNG).
    #[allow(clippy::too_many_arguments)]
    pub fn accept(
        local_addr: Ipv4Addr,
        peer_addr: Ipv4Addr,
        local_port: u16,
        peer_port: u16,
        os: OsProfile,
        iw: IwPolicy,
        app: Box<dyn App>,
        syn: &tcp::Repr,
        isn: u32,
        now: Instant,
    ) -> (Tcb, TcbOutput) {
        debug_assert!(syn.flags.contains(Flags::SYN));
        let mss = os.effective_mss(syn.mss());
        let iw_bytes = iw.initial_cwnd(mss);
        let rto = os.initial_rto;
        let mut tcb = Tcb {
            local_addr,
            peer_addr,
            local_port,
            peer_port,
            os,
            app,
            state: State::SynRcvd,
            mss,
            iw_bytes,
            iss: isn,
            snd_una: isn,
            snd_nxt: isn.wrapping_add(1),
            rcv_nxt: syn.seq.wrapping_add(1),
            peer_wnd: u32::from(syn.window),
            cwnd: iw_bytes,
            ssthresh: u32::MAX,
            send_buf: Vec::new(),
            sent: 0,
            fill_remaining: 0,
            fill_base: 0,
            inflight: VecDeque::new(),
            close_pending: false,
            fin_sent: false,
            rx_stream: Vec::new(),
            rto,
            rto_deadline: None,
            retries: 0,
            armed: None,
            retransmit_count: 0,
        };
        let mut out = TcbOutput::default();
        out.tx.push(tcb.syn_ack());
        tcb.arm_rto(now, &mut out);
        (tcb, out)
    }

    fn syn_ack(&self) -> tcp::Repr {
        tcp::Repr {
            src_port: self.local_port,
            dst_port: self.peer_port,
            seq: self.iss,
            ack: self.rcv_nxt,
            flags: Flags::SYN | Flags::ACK,
            window: 65535,
            // The server advertises its own MSS; answering with the
            // clamped value is what lets the scanner observe the real
            // segment size early (it still verifies against data).
            options: vec![TcpOption::Mss(self.mss.min(65535) as u16)],
            payload: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Whether this TCB can be discarded.
    pub fn is_closed(&self) -> bool {
        self.state == State::Closed
    }

    /// The effective MSS in use.
    pub fn effective_mss(&self) -> u32 {
        self.mss
    }

    /// The initial window in bytes this connection started with.
    pub fn iw_bytes(&self) -> u32 {
        self.iw_bytes
    }

    /// Total retransmissions performed (diagnostics / tests).
    pub fn retransmit_count(&self) -> u64 {
        self.retransmit_count
    }

    /// Handle an inbound segment.
    pub fn on_segment(&mut self, seg: &tcp::Repr, now: Instant) -> TcbOutput {
        let mut out = TcbOutput::default();
        if self.state == State::Closed {
            return out;
        }
        if seg.flags.contains(Flags::RST) {
            self.state = State::Closed;
            return out;
        }
        // A retransmitted SYN in SynRcvd: re-send the SYN-ACK.
        if seg.flags.contains(Flags::SYN) {
            if self.state == State::SynRcvd {
                out.tx.push(self.syn_ack());
                self.arm_rto(now, &mut out);
            }
            return out;
        }

        // ACK processing.
        if seg.flags.contains(Flags::ACK) {
            self.process_ack(seg.ack, now);
        }
        self.peer_wnd = u32::from(seg.window);

        if self.state == State::SynRcvd && seq::lt(self.iss, seg.ack) {
            self.state = State::Established;
        }

        // Data processing (only in-order data is consumed).
        let mut should_ack = false;
        if !seg.payload.is_empty() {
            if seg.seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                self.rx_stream.extend_from_slice(&seg.payload);
                let consumed = std::mem::take(&mut self.rx_stream);
                if let Some(resp) = self.app.on_data(&consumed) {
                    self.apply_app_response(resp, &mut out);
                } else {
                    self.rx_stream = consumed;
                }
            }
            should_ack = true;
        }
        // Peer FIN.
        if seg.flags.contains(Flags::FIN)
            && seg.seq.wrapping_add(seg.payload.len() as u32) == self.rcv_nxt
        {
            self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
            should_ack = true;
            // Passive close: we FIN back once our data drains.
            self.close_pending = true;
        }

        if self.state == State::Closed {
            return out;
        }

        // Try to transmit whatever the window now admits.
        let sent_any = self.pump_send(&mut out);

        // Pure ACK if we consumed sequence space but sent no data.
        if should_ack && !sent_any {
            out.tx.push(self.bare_ack());
        }

        self.update_rto_timer(now, &mut out);
        out
    }

    fn apply_app_response(&mut self, resp: AppResponse, out: &mut TcbOutput) {
        if resp.reset {
            out.tx.push(tcp::Repr::bare(
                self.local_port,
                self.peer_port,
                self.snd_nxt,
                self.rcv_nxt,
                Flags::RST | Flags::ACK,
                0,
            ));
            self.state = State::Closed;
            return;
        }
        // Per-service IW (Akamai-style, §4.3): the edge applies the
        // property's congestion configuration once it knows which
        // service is requested — legal only before any data went out.
        if let Some(policy) = resp.iw_override {
            if self.inflight.is_empty() && self.unsent() == 0 {
                self.cwnd = policy.initial_cwnd(self.mss);
                self.iw_bytes = self.cwnd;
            }
        }
        if resp.fill > 0 || !resp.data.is_empty() {
            // A later response queued behind an unfinished lazy tail
            // must not interleave with it: settle the tail first. In a
            // probe exchange this never triggers (one response per
            // connection).
            self.materialize_fill(self.send_buf.len() + self.fill_remaining);
        }
        if self.send_buf.is_empty() {
            // First (and in a probe exchange, only) response: adopt the
            // application's buffer instead of copying it.
            self.send_buf = resp.data;
        } else {
            self.send_buf.extend_from_slice(&resp.data);
        }
        if resp.fill > 0 {
            self.fill_base = self.send_buf.len();
            self.fill_remaining = resp.fill;
        }
        if resp.close {
            self.close_pending = true;
        }
    }

    fn process_ack(&mut self, ack: u32, _now: Instant) {
        if !seq::lt(self.snd_una, ack) || seq::lt(self.snd_nxt, ack) {
            return; // duplicate or out-of-window ACK
        }
        let mut bytes_acked = seq::dist(self.snd_una, ack);
        // The SYN occupies one sequence unit but is not data: the
        // handshake ACK must not grow cwnd (it would add a runt segment
        // to the initial flight and corrupt the IW under measurement).
        if self.state == State::SynRcvd {
            bytes_acked = bytes_acked.saturating_sub(1);
        }
        self.snd_una = ack;
        // Drop fully acknowledged segments from the retransmit store.
        while let Some(first) = self.inflight.front() {
            let end = first.seq.wrapping_add(first.seq_len());
            if seq::le(end, ack) {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        // Slow start with appropriate byte counting; this connection
        // never reaches congestion avoidance in a probe exchange.
        if self.cwnd < self.ssthresh {
            self.cwnd = self.cwnd.saturating_add(bytes_acked);
        }
        // Fresh ACK: reset backoff.
        self.retries = 0;
        self.rto = self.os.initial_rto;
        if self.inflight.is_empty() {
            self.rto_deadline = None;
            if self.state == State::FinWait && self.fin_sent {
                self.state = State::Closed;
            }
        }
    }

    /// Unsent bytes remaining in the send stream (materialized or owed
    /// as lazy filler).
    #[inline]
    fn unsent(&self) -> usize {
        self.send_buf.len() - self.sent + self.fill_remaining
    }

    /// Grow `send_buf` to at least `upto` bytes by materializing owed
    /// filler. Never exceeds the promised stream length.
    fn materialize_fill(&mut self, upto: usize) {
        let take = upto
            .saturating_sub(self.send_buf.len())
            .min(self.fill_remaining);
        if take > 0 {
            crate::app::fill_pattern_continue(&mut self.send_buf, self.fill_base, take);
            self.fill_remaining -= take;
        }
    }

    /// Transmit as much of the send queue as cwnd and the peer window
    /// allow; attach the FIN to the segment that drains the queue.
    /// Returns true if any segment (data or FIN) was emitted.
    fn pump_send(&mut self, out: &mut TcbOutput) -> bool {
        if self.state == State::SynRcvd {
            return false; // wait for the handshake ACK
        }
        let mut sent_any = false;
        loop {
            let inflight_bytes = seq::dist(self.snd_una, self.snd_nxt);
            let wnd = self.cwnd.min(self.peer_wnd);
            let allowance = wnd.saturating_sub(inflight_bytes);
            if self.unsent() == 0 || allowance == 0 {
                break;
            }
            let take = (self.mss as usize)
                .min(self.unsent())
                .min(allowance as usize);
            let start = self.sent;
            self.materialize_fill(start + take);
            self.sent += take;
            let drained = self.unsent() == 0;
            let fin = drained && self.close_pending && !self.fin_sent;
            let mut flags = Flags::ACK;
            if drained {
                flags |= Flags::PSH;
            }
            if fin {
                flags |= Flags::FIN;
                self.fin_sent = true;
                self.state = State::FinWait;
            }
            let repr = tcp::Repr {
                src_port: self.local_port,
                dst_port: self.peer_port,
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                flags,
                window: 65535,
                options: Vec::new(),
                payload: self.send_buf[start..start + take].to_vec(),
            };
            self.inflight.push_back(InflightSeg {
                seq: self.snd_nxt,
                start,
                len: take,
                fin,
            });
            self.snd_nxt = self.snd_nxt.wrapping_add(take as u32 + u32::from(fin));
            out.tx.push(repr);
            sent_any = true;
        }
        // A FIN with no data left to carry it: bare FIN segment.
        if self.close_pending
            && !self.fin_sent
            && self.unsent() == 0
            && self.state == State::Established
        {
            let repr = tcp::Repr::bare(
                self.local_port,
                self.peer_port,
                self.snd_nxt,
                self.rcv_nxt,
                Flags::FIN | Flags::ACK,
                65535,
            );
            self.inflight.push_back(InflightSeg {
                seq: self.snd_nxt,
                start: self.send_buf.len(),
                len: 0,
                fin: true,
            });
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.fin_sent = true;
            self.state = State::FinWait;
            out.tx.push(repr);
            sent_any = true;
        }
        sent_any
    }

    fn bare_ack(&self) -> tcp::Repr {
        tcp::Repr::bare(
            self.local_port,
            self.peer_port,
            self.snd_nxt,
            self.rcv_nxt,
            Flags::ACK,
            65535,
        )
    }

    fn arm_rto(&mut self, now: Instant, out: &mut TcbOutput) {
        let deadline = now + self.rto;
        self.rto_deadline = Some(deadline);
        out.deadline = Some(deadline);
    }

    fn update_rto_timer(&mut self, now: Instant, out: &mut TcbOutput) {
        if self.inflight.is_empty() && self.state != State::SynRcvd {
            self.rto_deadline = None;
        } else if self.rto_deadline.is_none() {
            self.arm_rto(now, out);
        } else {
            out.deadline = self.rto_deadline;
        }
    }

    /// Handle a timer event. Stale timers (deadline moved/cleared) no-op.
    pub fn on_timer(&mut self, now: Instant) -> TcbOutput {
        let mut out = TcbOutput::default();
        let Some(deadline) = self.rto_deadline else {
            return out;
        };
        if now < deadline || self.state == State::Closed {
            out.deadline = self.rto_deadline.filter(|d| *d > now);
            return out;
        }
        if self.retries >= MAX_RETRIES {
            self.state = State::Closed;
            return out;
        }
        self.retries += 1;
        self.rto = self.rto.saturating_mul(2);
        self.retransmit_count += 1;

        match self.state {
            State::SynRcvd => {
                out.tx.push(self.syn_ack());
            }
            State::Established | State::FinWait => {
                if let Some(first) = self.inflight.front().copied() {
                    // RFC 5681 on timeout: collapse to one segment and
                    // re-send the *first* unacknowledged segment — the
                    // retransmission the scanner is waiting for.
                    let flight = seq::dist(self.snd_una, self.snd_nxt);
                    self.ssthresh = (flight / 2).max(2 * self.mss);
                    self.cwnd = self.mss;
                    let mut flags = Flags::ACK;
                    if first.fin {
                        flags |= Flags::FIN;
                    }
                    if first.len > 0 {
                        flags |= Flags::PSH;
                    }
                    out.tx.push(tcp::Repr {
                        src_port: self.local_port,
                        dst_port: self.peer_port,
                        seq: first.seq,
                        ack: self.rcv_nxt,
                        flags,
                        window: 65535,
                        options: Vec::new(),
                        payload: self.send_buf[first.start..first.start + first.len].to_vec(),
                    });
                }
            }
            State::Closed => {}
        }
        self.arm_rto(now, &mut out);
        out
    }

    /// Whether a simulator timer must be armed for `deadline`: true the
    /// first time each distinct deadline is reported, false for repeats.
    pub fn should_arm(&mut self, deadline: Instant) -> bool {
        if self.armed == Some(deadline) {
            return false;
        }
        self.armed = Some(deadline);
        true
    }

    /// Connection identity accessors for the host layer.
    pub fn peer(&self) -> (Ipv4Addr, u16) {
        (self.peer_addr, self.peer_port)
    }

    /// Local (host) address and port.
    pub fn local(&self) -> (Ipv4Addr, u16) {
        (self.local_addr, self.local_port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::SilentApp;

    const HOST: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const SCAN: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);

    /// App serving `n` bytes then closing (HTTP-like) on any request.
    struct FixedApp {
        n: usize,
        close: bool,
    }
    impl App for FixedApp {
        fn on_data(&mut self, _d: &[u8]) -> Option<AppResponse> {
            let resp = vec![0x41; self.n];
            Some(if self.close {
                AppResponse::send_and_close(resp)
            } else {
                AppResponse::send(resp)
            })
        }
    }

    fn syn(mss: u16) -> tcp::Repr {
        tcp::Repr {
            src_port: 40000,
            dst_port: 80,
            seq: 1000,
            ack: 0,
            flags: Flags::SYN,
            window: 65535,
            options: vec![TcpOption::Mss(mss)],
            payload: Vec::new(),
        }
    }

    fn establish(n_bytes: usize, close: bool, iw: IwPolicy, mss: u16) -> (Tcb, TcbOutput) {
        let (mut tcb, out) = Tcb::accept(
            HOST,
            SCAN,
            80,
            40000,
            OsProfile::linux(),
            iw,
            Box::new(FixedApp { n: n_bytes, close }),
            &syn(mss),
            5000,
            Instant::ZERO,
        );
        assert_eq!(out.tx.len(), 1);
        assert!(out.tx[0].flags.contains(Flags::SYN | Flags::ACK));
        // ACK + request in one packet, like the scanner sends.
        let req = tcp::Repr {
            src_port: 40000,
            dst_port: 80,
            seq: 1001,
            ack: 5001,
            flags: Flags::ACK | Flags::PSH,
            window: 65535,
            options: vec![],
            payload: b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        };
        let out = tcb.on_segment(&req, Instant::ZERO + Duration::from_millis(20));
        (tcb, out)
    }

    #[test]
    fn handshake_and_initial_flight_respects_iw10() {
        let (tcb, out) = establish(10_000, true, IwPolicy::Segments(10), 64);
        assert_eq!(tcb.state(), State::Established);
        assert_eq!(tcb.effective_mss(), 64);
        // Exactly 10 segments of 64 bytes, no FIN (data remains queued).
        assert_eq!(out.tx.len(), 10);
        assert!(out.tx.iter().all(|s| s.payload.len() == 64));
        assert!(out.tx.iter().all(|s| !s.flags.contains(Flags::FIN)));
    }

    #[test]
    fn windows_mss_floor_blows_up_segment_size() {
        let (mut tcb, o) = Tcb::accept(
            HOST,
            SCAN,
            80,
            40000,
            OsProfile::windows(),
            IwPolicy::Segments(4),
            Box::new(FixedApp {
                n: 50_000,
                close: true,
            }),
            &syn(64),
            9,
            Instant::ZERO,
        );
        assert_eq!(o.tx[0].mss(), Some(536));
        let req = tcp::Repr {
            src_port: 40000,
            dst_port: 80,
            seq: 1001,
            ack: 10,
            flags: Flags::ACK,
            window: 65535,
            options: vec![],
            payload: b"x".to_vec(),
        };
        let out = tcb.on_segment(&req, Instant::ZERO);
        assert_eq!(tcb.effective_mss(), 536);
        assert_eq!(out.tx.len(), 4);
        assert!(out.tx.iter().all(|s| s.payload.len() == 536));
    }

    #[test]
    fn few_data_host_sends_fin_with_last_segment() {
        // 200 bytes at MSS 64 = 3 full + 1 partial segment; FIN on last.
        let (_tcb, out) = establish(200, true, IwPolicy::Segments(10), 64);
        assert_eq!(out.tx.len(), 4);
        assert_eq!(out.tx[3].payload.len(), 200 - 3 * 64);
        assert!(out.tx[3].flags.contains(Flags::FIN));
        assert!(out.tx[..3].iter().all(|s| !s.flags.contains(Flags::FIN)));
    }

    #[test]
    fn exactly_iw_data_still_fins_inside_flight() {
        let (_tcb, out) = establish(640, true, IwPolicy::Segments(10), 64);
        assert_eq!(out.tx.len(), 10);
        assert!(out.tx[9].flags.contains(Flags::FIN));
    }

    #[test]
    fn rto_retransmits_first_segment_only() {
        let (mut tcb, out) = establish(10_000, true, IwPolicy::Segments(10), 64);
        let first_seq = out.tx[0].seq;
        let deadline = out.deadline.expect("rto armed");
        let out2 = tcb.on_timer(deadline);
        assert_eq!(out2.tx.len(), 1, "exactly the first segment again");
        assert_eq!(out2.tx[0].seq, first_seq);
        assert_eq!(out2.tx[0].payload.len(), 64);
        assert_eq!(tcb.retransmit_count(), 1);
        // Backoff doubled.
        assert!(out2.deadline.unwrap() > deadline + Duration::from_millis(1500));
    }

    #[test]
    fn stale_timer_is_noop() {
        let (mut tcb, out) = establish(10_000, true, IwPolicy::Segments(10), 64);
        let deadline = out.deadline.unwrap();
        let early = Instant::ZERO + Duration::from_millis(100);
        assert!(early < deadline);
        let out2 = tcb.on_timer(early);
        assert!(out2.tx.is_empty());
    }

    #[test]
    fn ack_after_retransmit_releases_limited_new_data() {
        let (mut tcb, out) = establish(10_000, true, IwPolicy::Segments(10), 64);
        let deadline = out.deadline.unwrap();
        let _ = tcb.on_timer(deadline);
        // The scanner now ACKs the whole flight with a 2-MSS window.
        let last_seq = out.tx[9].seq.wrapping_add(64);
        let ack = tcp::Repr::bare(40000, 80, 1019, last_seq, Flags::ACK, 128);
        let out3 = tcb.on_segment(&ack, deadline + Duration::from_millis(20));
        // The host had more data: new segments flow, capped by rwnd=128.
        let new_bytes: usize = out3.tx.iter().map(|s| s.payload.len()).sum();
        assert!(new_bytes > 0, "host was IW-limited; must release more");
        assert!(new_bytes <= 128, "flow control enforced");
    }

    #[test]
    fn ack_when_out_of_data_releases_nothing() {
        let (mut tcb, out) = establish(200, true, IwPolicy::Segments(10), 64);
        let last = &out.tx[3];
        let end = last.seq.wrapping_add(last.seq_len());
        let ack = tcp::Repr::bare(40000, 80, 1019, end, Flags::ACK, 128);
        let out2 = tcb.on_segment(&ack, Instant::ZERO + Duration::from_millis(50));
        assert!(out2.tx.iter().all(|s| s.payload.is_empty()));
        assert!(tcb.is_closed(), "FIN acked, connection done");
    }

    #[test]
    fn rst_kills_connection() {
        let (mut tcb, _out) = establish(10_000, true, IwPolicy::Segments(10), 64);
        let rst = tcp::Repr::bare(40000, 80, 1019, 0, Flags::RST, 0);
        tcb.on_segment(&rst, Instant::ZERO + Duration::from_millis(30));
        assert!(tcb.is_closed());
    }

    #[test]
    fn byte_policy_counts() {
        let (_tcb, out) = establish(10_000, true, IwPolicy::Bytes(4096), 64);
        assert_eq!(out.tx.len(), 64, "4 kB at MSS 64 = 64 segments");
        let (_tcb, out) = establish(10_000, true, IwPolicy::Bytes(4096), 128);
        assert_eq!(out.tx.len(), 32, "4 kB at MSS 128 = 32 segments");
    }

    #[test]
    fn mute_app_acks_but_sends_nothing() {
        let (mut tcb, out) = Tcb::accept(
            HOST,
            SCAN,
            80,
            40000,
            OsProfile::linux(),
            IwPolicy::Segments(10),
            Box::new(SilentApp::default()),
            &syn(64),
            77,
            Instant::ZERO,
        );
        assert_eq!(out.tx.len(), 1);
        let req = tcp::Repr {
            src_port: 40000,
            dst_port: 80,
            seq: 1001,
            ack: 78,
            flags: Flags::ACK | Flags::PSH,
            window: 65535,
            options: vec![],
            payload: b"hello?".to_vec(),
        };
        let out2 = tcb.on_segment(&req, Instant::ZERO);
        assert_eq!(out2.tx.len(), 1);
        assert!(out2.tx[0].payload.is_empty());
        assert!(out2.tx[0].flags.contains(Flags::ACK));
        assert!(!out2.tx[0].flags.contains(Flags::FIN));
    }

    #[test]
    fn silent_close_sends_bare_fin() {
        let (mut tcb, _) = Tcb::accept(
            HOST,
            SCAN,
            443,
            40000,
            OsProfile::linux(),
            IwPolicy::Segments(10),
            Box::new(SilentApp {
                close_on_request: true,
            }),
            &syn(64),
            77,
            Instant::ZERO,
        );
        let req = tcp::Repr {
            src_port: 40000,
            dst_port: 443,
            seq: 1001,
            ack: 78,
            flags: Flags::ACK | Flags::PSH,
            window: 65535,
            options: vec![],
            payload: b"\x16\x03\x01".to_vec(),
        };
        let out = tcb.on_segment(&req, Instant::ZERO);
        assert!(out.tx.iter().any(|s| s.flags.contains(Flags::FIN)));
        assert!(out.tx.iter().all(|s| s.payload.is_empty()));
    }

    #[test]
    fn reset_app_sends_rst() {
        struct RstApp;
        impl App for RstApp {
            fn on_data(&mut self, _d: &[u8]) -> Option<AppResponse> {
                Some(AppResponse::abort())
            }
        }
        let (mut tcb, _) = Tcb::accept(
            HOST,
            SCAN,
            80,
            40000,
            OsProfile::linux(),
            IwPolicy::Segments(10),
            Box::new(RstApp),
            &syn(64),
            77,
            Instant::ZERO,
        );
        let req = tcp::Repr {
            src_port: 40000,
            dst_port: 80,
            seq: 1001,
            ack: 78,
            flags: Flags::ACK,
            window: 65535,
            options: vec![],
            payload: b"x".to_vec(),
        };
        let out = tcb.on_segment(&req, Instant::ZERO);
        assert!(out.tx.iter().any(|s| s.flags.contains(Flags::RST)));
        assert!(tcb.is_closed());
    }

    #[test]
    fn syn_retransmission_repeats_syn_ack() {
        let (mut tcb, _) = Tcb::accept(
            HOST,
            SCAN,
            80,
            40000,
            OsProfile::linux(),
            IwPolicy::Segments(2),
            Box::new(SilentApp::default()),
            &syn(64),
            77,
            Instant::ZERO,
        );
        let out = tcb.on_segment(&syn(64), Instant::ZERO + Duration::from_millis(5));
        assert_eq!(out.tx.len(), 1);
        assert!(out.tx[0].flags.contains(Flags::SYN | Flags::ACK));
    }

    #[test]
    fn gives_up_after_max_retries() {
        let (mut tcb, out) = establish(10_000, true, IwPolicy::Segments(10), 64);
        let mut deadline = out.deadline.unwrap();
        for _ in 0..MAX_RETRIES {
            let o = tcb.on_timer(deadline);
            deadline = match o.deadline {
                Some(d) => d,
                None => break,
            };
        }
        let final_out = tcb.on_timer(deadline);
        assert!(final_out.tx.is_empty());
        assert!(tcb.is_closed());
    }

    #[test]
    fn out_of_order_data_triggers_dup_ack_not_consumption() {
        let (mut tcb, _) = establish(10_000, true, IwPolicy::Segments(10), 64);
        let ooo = tcp::Repr {
            src_port: 40000,
            dst_port: 80,
            seq: 5000, // way ahead of rcv_nxt
            ack: 5001,
            flags: Flags::ACK,
            window: 65535,
            options: vec![],
            payload: b"stray".to_vec(),
        };
        let out = tcb.on_segment(&ooo, Instant::ZERO + Duration::from_millis(40));
        // Dup-ACK at the old rcv_nxt (or piggybacked equivalently).
        assert!(out.tx.iter().any(|s| s.flags.contains(Flags::ACK)));
    }
}
