//! The simulated TLS server application (§3.3's counterpart).
//!
//! On a ClientHello the server either ships its first flight —
//! ServerHello, Certificate (the calibrated chain), optional stapled
//! CertificateStatus, optional ServerKeyExchange, ServerHelloDone — or
//! fails in one of the ways the paper attributes the TLS "few data" and
//! "no data" buckets to: missing SNI and cipher mismatch.

use crate::app::{App, AppResponse};
use crate::config::{TlsBehavior, TlsConfig};
use iw_wire::tls::handshake::{ClientHello, ServerFlight};
use iw_wire::tls::record::{self, ContentType, ProtocolVersion};
use iw_wire::tls::Alert;
use iw_wire::Error;

/// One TLS connection's application state.
pub struct TlsApp {
    config: TlsConfig,
    buffer: Vec<u8>,
    answered: bool,
}

impl TlsApp {
    /// New connection against this host config.
    pub fn new(config: TlsConfig) -> TlsApp {
        TlsApp {
            config,
            buffer: Vec::new(),
            answered: false,
        }
    }

    fn alert(&self, alert: Alert) -> AppResponse {
        let rec = record::Record::emit(
            ContentType::Alert,
            ProtocolVersion::TLS12,
            &alert.to_bytes(),
        );
        AppResponse::send_and_close(rec)
    }

    fn serve(&self, hello: &ClientHello) -> AppResponse {
        // Choose our configured suite iff the client offered it.
        if !hello.cipher_suites.contains(&self.config.cipher) {
            return self.alert(Alert::HANDSHAKE_FAILURE);
        }
        let ske = if self.config.cipher.has_server_key_exchange() {
            // ECDHE params + signature: a realistic ~333 bytes.
            Some(vec![0x5a; 333])
        } else {
            None
        };
        let ocsp = match (hello.wants_ocsp(), self.config.ocsp_len) {
            (true, Some(n)) => Some(vec![0x0c; n as usize]),
            _ => None,
        };
        let flight = ServerFlight {
            cipher: self.config.cipher,
            random: [0x42; 32],
            certificates: self
                .config
                .cert_lens
                .iter()
                .map(|n| cert_filler(*n as usize))
                .collect(),
            ocsp_response: ocsp,
            key_exchange: ske,
        };
        // The flight is followed by silence: the server now waits for the
        // client's key exchange, so the connection stays open (the
        // scanner will RST it once the estimate is done).
        let mut response = AppResponse::send(flight.to_record_bytes());
        // Per-SNI IW override (Akamai-style per-service configuration).
        if let Some(name) = hello.server_name() {
            response.iw_override = self
                .config
                .sni_iw
                .iter()
                .find(|(sni, _)| name.eq_ignore_ascii_case(sni))
                .map(|(_, policy)| *policy);
        }
        response
    }
}

/// Deterministic DER-looking filler (0x30 SEQUENCE tag up front).
fn cert_filler(n: usize) -> Vec<u8> {
    let mut v = vec![0xd3; n];
    if n > 0 {
        v[0] = 0x30;
    }
    v
}

impl App for TlsApp {
    fn on_data(&mut self, data: &[u8]) -> Option<AppResponse> {
        match self.config.behavior {
            TlsBehavior::Mute => return None,
            TlsBehavior::Reset => return Some(AppResponse::abort()),
            _ => {}
        }
        if self.answered {
            // Anything after our flight (we do not implement the rest of
            // the handshake — the probe never continues it).
            return None;
        }
        self.buffer.extend_from_slice(data);
        let (records, _used) = match record::parse_stream(&self.buffer) {
            Ok(r) => r,
            Err(_) => return Some(AppResponse::abort()),
        };
        let Some(handshake) = records
            .iter()
            .find(|r| r.content_type == ContentType::Handshake)
        else {
            return None; // keep buffering
        };
        let hello = match ClientHello::parse(handshake.payload) {
            Ok(h) => h,
            Err(Error::Truncated) => return None,
            Err(_) => return Some(self.alert(Alert::HANDSHAKE_FAILURE)),
        };
        self.answered = true;
        let resp = match self.config.behavior {
            TlsBehavior::Serve => self.serve(&hello),
            TlsBehavior::AlertWithoutSni => {
                if hello.server_name().is_some() {
                    self.serve(&hello)
                } else {
                    self.alert(Alert::UNRECOGNIZED_NAME)
                }
            }
            TlsBehavior::CloseWithoutSni => {
                if hello.server_name().is_some() {
                    self.serve(&hello)
                } else {
                    AppResponse::silent_close()
                }
            }
            TlsBehavior::CipherMismatch => self.alert(Alert::HANDSHAKE_FAILURE),
            // iw-lint: allow(panic-budget)
            TlsBehavior::Mute | TlsBehavior::Reset => unreachable!("handled above"),
        };
        Some(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_wire::tls::record::parse_stream;
    use iw_wire::tls::CipherSuite;

    fn cfg(behavior: TlsBehavior) -> TlsConfig {
        TlsConfig {
            behavior,
            cipher: CipherSuite::ECDHE_RSA_AES128_GCM,
            cert_lens: vec![1200, 986],
            ocsp_len: Some(471),
            sni_iw: Vec::new(),
        }
    }

    fn hello(sni: Option<&str>) -> Vec<u8> {
        ClientHello::probe([1; 32], sni).to_record_bytes()
    }

    #[test]
    fn serves_full_flight() {
        let mut app = TlsApp::new(cfg(TlsBehavior::Serve));
        let resp = app.on_data(&hello(None)).unwrap();
        assert!(!resp.close, "server awaits client key exchange");
        let (records, _) = parse_stream(&resp.data).unwrap();
        assert!(!records.is_empty());
        // Flight exceeds chain + OCSP + SKE.
        assert!(resp.data.len() > 1200 + 986 + 471 + 333);
    }

    #[test]
    fn static_rsa_has_no_ske_and_smaller_flight() {
        let mut c = cfg(TlsBehavior::Serve);
        c.cipher = CipherSuite::RSA_AES128_CBC;
        c.ocsp_len = None;
        let mut app = TlsApp::new(c);
        let resp = app.on_data(&hello(None)).unwrap();
        let mut c2 = cfg(TlsBehavior::Serve);
        c2.ocsp_len = None;
        let mut app2 = TlsApp::new(c2);
        let resp2 = app2.on_data(&hello(None)).unwrap();
        assert!(resp.data.len() + 300 <= resp2.data.len());
    }

    #[test]
    fn sni_required_alerts_without_name() {
        let mut app = TlsApp::new(cfg(TlsBehavior::AlertWithoutSni));
        let resp = app.on_data(&hello(None)).unwrap();
        assert!(resp.close);
        let (records, _) = parse_stream(&resp.data).unwrap();
        assert_eq!(records[0].content_type, ContentType::Alert);
        assert_eq!(
            Alert::parse(records[0].payload),
            Some(Alert::UNRECOGNIZED_NAME)
        );
        // With SNI it serves.
        let mut app = TlsApp::new(cfg(TlsBehavior::AlertWithoutSni));
        let resp = app.on_data(&hello(Some("www.example.com"))).unwrap();
        assert!(resp.data.len() > 2000);
    }

    #[test]
    fn close_without_sni_sends_nothing() {
        let mut app = TlsApp::new(cfg(TlsBehavior::CloseWithoutSni));
        let resp = app.on_data(&hello(None)).unwrap();
        assert!(resp.close && resp.data.is_empty());
    }

    #[test]
    fn cipher_mismatch_alerts() {
        let mut app = TlsApp::new(cfg(TlsBehavior::CipherMismatch));
        let resp = app.on_data(&hello(Some("x"))).unwrap();
        let (records, _) = parse_stream(&resp.data).unwrap();
        assert_eq!(
            Alert::parse(records[0].payload),
            Some(Alert::HANDSHAKE_FAILURE)
        );
    }

    #[test]
    fn unoffered_cipher_alerts_even_when_serving() {
        let mut c = cfg(TlsBehavior::Serve);
        c.cipher = CipherSuite(0xfefe); // not in the probe's 40
        let mut app = TlsApp::new(c);
        let resp = app.on_data(&hello(None)).unwrap();
        assert!(resp.close);
        let (records, _) = parse_stream(&resp.data).unwrap();
        assert_eq!(records[0].content_type, ContentType::Alert);
    }

    #[test]
    fn partial_hello_buffers() {
        let mut app = TlsApp::new(cfg(TlsBehavior::Serve));
        let h = hello(None);
        let (a, b) = h.split_at(20);
        assert!(app.on_data(a).is_none());
        assert!(app.on_data(b).is_some());
    }

    #[test]
    fn ocsp_only_when_requested() {
        // Our probe always requests stapling; a hand-built hello without
        // the extension gets a smaller flight.
        let mut with_ocsp = TlsApp::new(cfg(TlsBehavior::Serve));
        let big = with_ocsp.on_data(&hello(None)).unwrap().data.len();
        let bare = ClientHello {
            random: [1; 32],
            cipher_suites: iw_wire::tls::browser_union_ciphers(),
            extensions: vec![],
        };
        let mut without = TlsApp::new(cfg(TlsBehavior::Serve));
        let small = without.on_data(&bare.to_record_bytes()).unwrap().data.len();
        assert!(big >= small + 471);
    }

    #[test]
    fn garbage_aborts() {
        let mut app = TlsApp::new(cfg(TlsBehavior::Serve));
        // A syntactically valid record carrying a non-ClientHello body.
        let rec = record::Record::emit(
            ContentType::Handshake,
            ProtocolVersion::TLS12,
            &[9, 9, 9, 9],
        );
        let resp = app.on_data(&rec).unwrap();
        assert!(resp.close || resp.reset);
    }

    #[test]
    fn sni_iw_override() {
        use crate::policy::IwPolicy;
        let mut config = cfg(TlsBehavior::Serve);
        config.sni_iw = vec![("media.customer.example".into(), IwPolicy::Segments(32))];
        let mut app = TlsApp::new(config.clone());
        let resp = app.on_data(&hello(Some("media.customer.example"))).unwrap();
        assert_eq!(resp.iw_override, Some(IwPolicy::Segments(32)));
        let mut app = TlsApp::new(config);
        let resp = app.on_data(&hello(Some("other.example"))).unwrap();
        assert_eq!(resp.iw_override, None);
    }

    #[test]
    fn mute_and_reset() {
        let mut mute = TlsApp::new(cfg(TlsBehavior::Mute));
        assert!(mute.on_data(&hello(None)).is_none());
        let mut rst = TlsApp::new(cfg(TlsBehavior::Reset));
        assert_eq!(rst.on_data(b"x"), Some(AppResponse::abort()));
    }
}
