//! Operating-system TCP personality profiles.
//!
//! The paper examined "fresh copies of multiple operating systems" to find
//! the smallest usable MSS (§3.1). The relevant behavioural axis is what a
//! stack does with an absurdly small MSS advertised by the peer; the
//! scanner's 64 B announcement is calibrated against exactly these rules.

use iw_netsim::Duration;

/// A TCP stack personality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsProfile {
    /// Human-readable name ("linux-4.x", "windows-2012", ...).
    pub name: &'static str,
    /// Smallest segment size the stack will actually use. A peer MSS
    /// below this is clamped up (Linux behaviour: floor at 64 B... a peer
    /// advertising 32 still gets 64-byte segments).
    pub min_mss: u32,
    /// If the peer's MSS is below this threshold, fall back to this value
    /// entirely (Windows behaviour: anything below 536 B becomes 536 B).
    pub small_mss_fallback: Option<u32>,
    /// Initial retransmission timeout.
    pub initial_rto: Duration,
}

impl OsProfile {
    /// Modern Linux: floors the peer MSS at 64 B, 1 s initial RTO.
    pub fn linux() -> OsProfile {
        OsProfile {
            name: "linux",
            min_mss: 64,
            small_mss_fallback: None,
            initial_rto: Duration::from_millis(1000),
        }
    }

    /// Windows: any peer MSS below 536 B is replaced by 536 B.
    pub fn windows() -> OsProfile {
        OsProfile {
            name: "windows",
            min_mss: 536,
            small_mss_fallback: Some(536),
            initial_rto: Duration::from_millis(3000),
        }
    }

    /// Legacy embedded stacks (home routers, modems): accept tiny MSS
    /// as-is but with a sluggish RTO.
    pub fn embedded() -> OsProfile {
        OsProfile {
            name: "embedded",
            min_mss: 32,
            small_mss_fallback: None,
            initial_rto: Duration::from_millis(1500),
        }
    }

    /// BSD-family: floors at 64 like Linux, slightly different RTO.
    pub fn bsd() -> OsProfile {
        OsProfile {
            name: "bsd",
            min_mss: 64,
            small_mss_fallback: None,
            initial_rto: Duration::from_millis(1200),
        }
    }

    /// The effective MSS this stack uses against a peer-advertised value
    /// (`None` = the peer sent no MSS option → RFC 1122 default 536).
    pub fn effective_mss(&self, peer_mss: Option<u16>) -> u32 {
        let advertised = peer_mss.map_or(536, u32::from);
        if let Some(fallback) = self.small_mss_fallback {
            if advertised < fallback {
                return fallback;
            }
        }
        advertised.max(self.min_mss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_floors_at_64() {
        let os = OsProfile::linux();
        assert_eq!(os.effective_mss(Some(64)), 64);
        assert_eq!(os.effective_mss(Some(32)), 64);
        assert_eq!(os.effective_mss(Some(128)), 128);
        assert_eq!(os.effective_mss(Some(1460)), 1460);
    }

    #[test]
    fn windows_falls_back_to_536() {
        let os = OsProfile::windows();
        assert_eq!(os.effective_mss(Some(64)), 536, "the paper's §3.1 quirk");
        assert_eq!(os.effective_mss(Some(535)), 536);
        assert_eq!(os.effective_mss(Some(536)), 536);
        assert_eq!(os.effective_mss(Some(1460)), 1460);
    }

    #[test]
    fn missing_mss_option_defaults_to_536() {
        assert_eq!(OsProfile::linux().effective_mss(None), 536);
        assert_eq!(OsProfile::windows().effective_mss(None), 536);
    }

    #[test]
    fn embedded_accepts_tiny() {
        assert_eq!(OsProfile::embedded().effective_mss(Some(40)), 40);
        assert_eq!(OsProfile::embedded().effective_mss(Some(16)), 32);
    }
}
