//! Adversarial host behaviours for fault-injection testing.
//!
//! A [`ChaosHost`] is not a TCP stack: it replays one pathological
//! pattern the resilience layer must survive — ICMP-unreachable targets,
//! stateless SYN-ACK responders that never send data (SYN-ACK floods /
//! accept-queue tarpits), and hosts that reset or go unreachable shortly
//! after the handshake.

use iw_netsim::{Duration, Effects, Endpoint, Instant, TimerToken};
use iw_wire::ipv4::Ipv4Addr;
use iw_wire::tcp::{self, Flags, TcpOption};
use iw_wire::{icmp, ipv4, IpProtocol};
use std::collections::HashMap;

/// The pathological behaviour a [`ChaosHost`] exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Answer every SYN with an ICMP destination-unreachable (the host or
    /// a router on its path rejects the probe).
    IcmpUnreachable {
        /// The unreachable code (1 = host, 3 = port, ...).
        code: u8,
    },
    /// Answer every SYN with a valid SYN-ACK and then go silent — the
    /// scanner allocates a session that can only die by timeout. En masse
    /// this is a SYN-ACK flood against the session table.
    SynAckBlackhole,
    /// Answer the SYN with a SYN-ACK, then inject a RST `after` the
    /// handshake (mid-connection reset).
    SynAckThenRst {
        /// Delay between the SYN-ACK and the RST.
        after: Duration,
    },
    /// Answer the SYN with a SYN-ACK, then report the destination
    /// unreachable `after` the handshake (path failure mid-session).
    SynAckThenIcmp {
        /// Delay between the SYN-ACK and the ICMP error.
        after: Duration,
        /// The unreachable code.
        code: u8,
    },
    /// Answer the SYN with a SYN-ACK whose acknowledgement number is off
    /// by `delta` (0 echoes the raw ISN instead of ISN+1; 2+ is garbage).
    /// A cookie-validating scanner must not promote or classify these.
    SynAckWrongAck {
        /// Offset added to the probe's sequence number in the SYN-ACK's
        /// ack field. The correct value is 1; anything else is invalid.
        delta: u8,
    },
    /// Answer the SYN with a valid SYN-ACK, then replay the identical
    /// SYN-ACK `after` a delay — a retransmitting or middlebox-duplicated
    /// responder. The scanner must treat the replay as a duplicate, not a
    /// second responsive target.
    SynAckReplayed {
        /// Delay between the original SYN-ACK and its replay.
        after: Duration,
    },
    /// Answer the SYN with a RST whose ack field does not carry the
    /// probe's cookie (an off-path attacker guessing at flows, or a
    /// middlebox fabricating resets). A cookie-validating scanner must
    /// not record a refused verdict.
    SpoofedRst,
    /// Answer every SYN with a burst of ICMP source-quench messages and
    /// never complete the handshake — an ICMP-rate-limited router
    /// speaking for a silent target. Source quench is advisory, so the
    /// scanner must NOT fast-fail the target; the burst feeds the
    /// harvest's rate-limiting signature instead.
    SourceQuench {
        /// Quench messages emitted per received SYN.
        burst: u32,
    },
}

/// Per-connection state for the delayed-injection modes.
#[derive(Debug, Clone, Copy)]
struct ChaosConn {
    peer: u32,
    isn: u32,
    ack: u32,
}

/// A host that misbehaves in exactly one scripted way.
pub struct ChaosHost {
    ip: Ipv4Addr,
    mode: ChaosMode,
    seed: u64,
    ip_ident: u16,
    /// Connections awaiting a delayed RST/ICMP, keyed by timer token.
    conns: HashMap<TimerToken, ChaosConn>,
}

impl ChaosHost {
    /// Create a chaos host; `seed` makes its ISNs deterministic.
    pub fn new(ip: Ipv4Addr, mode: ChaosMode, seed: u64) -> ChaosHost {
        ChaosHost {
            ip,
            mode,
            seed,
            ip_ident: 1,
            conns: HashMap::new(),
        }
    }

    /// Deterministic per-connection ISN (splitmix-style hash so every
    /// (host, peer, ports) tuple gets a stable value).
    fn isn(&self, peer: u32, sport: u16, dport: u16) -> u32 {
        let mut x = self.seed
            ^ (u64::from(self.ip.to_u32()) << 32)
            ^ u64::from(peer)
            ^ (u64::from(sport) << 48)
            ^ (u64::from(dport) << 16);
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (x ^ (x >> 31)) as u32
    }

    fn send_tcp(&mut self, peer: Ipv4Addr, seg: &tcp::Repr, fx: &mut Effects) {
        let l4 = seg.emit(self.ip, peer);
        let datagram = ipv4::build_datagram(
            &ipv4::Repr {
                src_addr: self.ip,
                dst_addr: peer,
                protocol: IpProtocol::Tcp,
                payload_len: l4.len(),
                ttl: 64,
            },
            self.ip_ident,
            &l4,
        );
        self.ip_ident = self.ip_ident.wrapping_add(1);
        fx.send(datagram);
    }

    fn send_unreachable(&mut self, peer: Ipv4Addr, code: u8, fx: &mut Effects) {
        let l4 = icmp::Message::DstUnreachable { code }.emit();
        let datagram = ipv4::build_datagram(
            &ipv4::Repr {
                src_addr: self.ip,
                dst_addr: peer,
                protocol: IpProtocol::Icmp,
                payload_len: l4.len(),
                ttl: 64,
            },
            self.ip_ident,
            &l4,
        );
        self.ip_ident = self.ip_ident.wrapping_add(1);
        fx.send(datagram);
    }

    fn send_source_quench(&mut self, peer: Ipv4Addr, fx: &mut Effects) {
        let l4 = icmp::Message::SourceQuench.emit();
        let datagram = ipv4::build_datagram(
            &ipv4::Repr {
                src_addr: self.ip,
                dst_addr: peer,
                protocol: IpProtocol::Icmp,
                payload_len: l4.len(),
                ttl: 64,
            },
            self.ip_ident,
            &l4,
        );
        self.ip_ident = self.ip_ident.wrapping_add(1);
        fx.send(datagram);
    }

    fn send_syn_ack(&mut self, peer: Ipv4Addr, seg: &tcp::Repr, isn: u32, fx: &mut Effects) {
        let syn_ack = tcp::Repr {
            src_port: seg.dst_port,
            dst_port: seg.src_port,
            seq: isn,
            ack: seg.seq.wrapping_add(1),
            flags: Flags::SYN | Flags::ACK,
            window: 65535,
            options: vec![TcpOption::Mss(1460)],
            payload: Vec::new(),
        };
        self.send_tcp(peer, &syn_ack, fx);
    }

    fn on_syn(&mut self, peer: Ipv4Addr, seg: &tcp::Repr, fx: &mut Effects) {
        match self.mode {
            ChaosMode::IcmpUnreachable { code } => {
                self.send_unreachable(peer, code, fx);
                fx.finished = true;
            }
            ChaosMode::SynAckBlackhole => {
                // Stateless SYN-ACK to everything; never any data. The
                // session starves through its collect timeout, so a flood
                // of these is the cheapest way to pin the session table.
                let isn = self.isn(peer.to_u32(), seg.src_port, seg.dst_port);
                self.send_syn_ack(peer, seg, isn, fx);
                fx.finished = true;
            }
            ChaosMode::SourceQuench { burst } => {
                for _ in 0..burst {
                    self.send_source_quench(peer, fx);
                }
                fx.finished = true;
            }
            ChaosMode::SynAckWrongAck { delta } => {
                let isn = self.isn(peer.to_u32(), seg.src_port, seg.dst_port);
                let syn_ack = tcp::Repr {
                    src_port: seg.dst_port,
                    dst_port: seg.src_port,
                    seq: isn,
                    ack: seg.seq.wrapping_add(u32::from(delta)),
                    flags: Flags::SYN | Flags::ACK,
                    window: 65535,
                    options: vec![TcpOption::Mss(1460)],
                    payload: Vec::new(),
                };
                self.send_tcp(peer, &syn_ack, fx);
                fx.finished = true;
            }
            ChaosMode::SpoofedRst => {
                // ack carries the probe's raw seq, not seq+1, so it can
                // never match a cookie check.
                let rst = tcp::Repr::bare(
                    seg.dst_port,
                    seg.src_port,
                    0,
                    seg.seq,
                    Flags::RST | Flags::ACK,
                    0,
                );
                self.send_tcp(peer, &rst, fx);
                fx.finished = true;
            }
            ChaosMode::SynAckThenRst { after }
            | ChaosMode::SynAckThenIcmp { after, .. }
            | ChaosMode::SynAckReplayed { after } => {
                let isn = self.isn(peer.to_u32(), seg.src_port, seg.dst_port);
                self.send_syn_ack(peer, seg, isn, fx);
                let token = (u64::from(seg.src_port) << 16) | u64::from(seg.dst_port);
                self.conns.insert(
                    token,
                    ChaosConn {
                        peer: peer.to_u32(),
                        isn,
                        ack: seg.seq.wrapping_add(1),
                    },
                );
                fx.arm(after, token);
            }
        }
    }
}

impl Endpoint for ChaosHost {
    fn on_packet(&mut self, pkt: &[u8], _now: Instant, fx: &mut Effects) {
        let Ok(packet) = ipv4::Packet::new_checked(pkt) else {
            return;
        };
        let Ok(ip_repr) = ipv4::Repr::parse(&packet) else {
            return;
        };
        if ip_repr.dst_addr != self.ip || ip_repr.protocol != IpProtocol::Tcp {
            fx.finished = self.conns.is_empty();
            return;
        }
        let Ok(seg_packet) = tcp::Packet::new_checked(packet.payload()) else {
            return;
        };
        let Ok(seg) = tcp::Repr::parse(&seg_packet, ip_repr.src_addr, ip_repr.dst_addr) else {
            return;
        };
        if seg.flags.contains(Flags::SYN) && !seg.flags.contains(Flags::ACK) {
            self.on_syn(ip_repr.src_addr, &seg, fx);
        } else {
            // ACKs, data, RSTs: swallowed silently in every mode.
            fx.finished = self.conns.is_empty();
        }
    }

    fn on_timer(&mut self, token: TimerToken, _now: Instant, fx: &mut Effects) {
        let Some(conn) = self.conns.remove(&token) else {
            fx.finished = self.conns.is_empty();
            return;
        };
        let peer = Ipv4Addr::from_u32(conn.peer);
        let sport = ((token >> 16) & 0xffff) as u16;
        let dport = (token & 0xffff) as u16;
        match self.mode {
            ChaosMode::SynAckThenRst { .. } => {
                // From the host's service port back to the scanner's
                // source port; seq continues after the SYN-ACK's space.
                let rst = tcp::Repr::bare(dport, sport, conn.isn.wrapping_add(1), 0, Flags::RST, 0);
                self.send_tcp(peer, &rst, fx);
            }
            ChaosMode::SynAckThenIcmp { code, .. } => {
                self.send_unreachable(peer, code, fx);
            }
            ChaosMode::SynAckReplayed { .. } => {
                // Byte-identical replay of the original SYN-ACK.
                let syn_ack = tcp::Repr {
                    src_port: dport,
                    dst_port: sport,
                    seq: conn.isn,
                    ack: conn.ack,
                    flags: Flags::SYN | Flags::ACK,
                    window: 65535,
                    options: vec![TcpOption::Mss(1460)],
                    payload: Vec::new(),
                };
                self.send_tcp(peer, &syn_ack, fx);
            }
            _ => {}
        }
        fx.finished = self.conns.is_empty();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCAN: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const HOSTIP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);

    fn syn_datagram(sport: u16) -> Vec<u8> {
        let seg = tcp::Repr {
            src_port: sport,
            dst_port: 80,
            seq: 1000,
            ack: 0,
            flags: Flags::SYN,
            window: 65535,
            options: vec![TcpOption::Mss(64)],
            payload: vec![],
        };
        let l4 = seg.emit(SCAN, HOSTIP);
        ipv4::build_datagram(
            &ipv4::Repr {
                src_addr: SCAN,
                dst_addr: HOSTIP,
                protocol: IpProtocol::Tcp,
                payload_len: l4.len(),
                ttl: 64,
            },
            1,
            &l4,
        )
    }

    fn parse_tcp(pkt: &[u8]) -> tcp::Repr {
        let ip = ipv4::Packet::new_checked(pkt).unwrap();
        let seg = tcp::Packet::new_checked(ip.payload()).unwrap();
        tcp::Repr::parse(&seg, ip.src_addr(), ip.dst_addr()).unwrap()
    }

    #[test]
    fn unreachable_mode_answers_syn_with_icmp() {
        let mut host = ChaosHost::new(HOSTIP, ChaosMode::IcmpUnreachable { code: 1 }, 7);
        let mut fx = Effects::default();
        host.on_packet(&syn_datagram(40000), Instant::ZERO, &mut fx);
        assert_eq!(fx.tx.len(), 1);
        let ip = ipv4::Packet::new_checked(&fx.tx[0][..]).unwrap();
        let msg = icmp::Message::parse(ip.payload()).unwrap();
        assert_eq!(msg, icmp::Message::DstUnreachable { code: 1 });
        assert!(fx.finished);
    }

    #[test]
    fn blackhole_mode_syn_acks_and_goes_silent() {
        let mut host = ChaosHost::new(HOSTIP, ChaosMode::SynAckBlackhole, 7);
        let mut fx = Effects::default();
        host.on_packet(&syn_datagram(40000), Instant::ZERO, &mut fx);
        assert_eq!(fx.tx.len(), 1);
        let reply = parse_tcp(&fx.tx[0]);
        assert!(reply.flags.contains(Flags::SYN | Flags::ACK));
        assert_eq!(reply.ack, 1001);
        assert!(fx.timers.is_empty());
        // ISNs are deterministic per tuple.
        let mut host2 = ChaosHost::new(HOSTIP, ChaosMode::SynAckBlackhole, 7);
        let mut fx2 = Effects::default();
        host2.on_packet(&syn_datagram(40000), Instant::ZERO, &mut fx2);
        assert_eq!(parse_tcp(&fx2.tx[0]).seq, reply.seq);
    }

    #[test]
    fn rst_mode_resets_after_delay() {
        let after = Duration::from_millis(10);
        let mut host = ChaosHost::new(HOSTIP, ChaosMode::SynAckThenRst { after }, 7);
        let mut fx = Effects::default();
        host.on_packet(&syn_datagram(40000), Instant::ZERO, &mut fx);
        let syn_ack = parse_tcp(&fx.tx[0]);
        assert_eq!(fx.timers.len(), 1);
        let (delay, token) = fx.timers[0];
        assert_eq!(delay, after);
        let mut fx2 = Effects::default();
        host.on_timer(token, Instant::ZERO + delay, &mut fx2);
        let rst = parse_tcp(&fx2.tx[0]);
        assert!(rst.flags.contains(Flags::RST));
        assert_eq!(rst.seq, syn_ack.seq.wrapping_add(1));
        assert_eq!(rst.dst_port, 40000);
        assert!(fx2.finished);
    }

    #[test]
    fn source_quench_mode_bursts_and_never_completes() {
        let mut host = ChaosHost::new(HOSTIP, ChaosMode::SourceQuench { burst: 3 }, 7);
        let mut fx = Effects::default();
        host.on_packet(&syn_datagram(40000), Instant::ZERO, &mut fx);
        assert_eq!(fx.tx.len(), 3);
        for pkt in &fx.tx {
            let ip = ipv4::Packet::new_checked(&pkt[..]).unwrap();
            assert_eq!(
                icmp::Message::parse(ip.payload()).unwrap(),
                icmp::Message::SourceQuench
            );
        }
        assert!(fx.timers.is_empty());
        assert!(fx.finished);
    }

    #[test]
    fn wrong_ack_mode_offsets_the_acknowledgement() {
        for delta in [0u8, 2, 7] {
            let mut host = ChaosHost::new(HOSTIP, ChaosMode::SynAckWrongAck { delta }, 7);
            let mut fx = Effects::default();
            host.on_packet(&syn_datagram(39000), Instant::ZERO, &mut fx);
            let reply = parse_tcp(&fx.tx[0]);
            assert!(reply.flags.contains(Flags::SYN | Flags::ACK));
            assert_eq!(reply.ack, 1000u32.wrapping_add(u32::from(delta)));
            assert!(fx.timers.is_empty());
            assert!(fx.finished);
        }
    }

    #[test]
    fn replayed_mode_duplicates_the_syn_ack_exactly() {
        let after = Duration::from_millis(20);
        let mut host = ChaosHost::new(HOSTIP, ChaosMode::SynAckReplayed { after }, 7);
        let mut fx = Effects::default();
        host.on_packet(&syn_datagram(39000), Instant::ZERO, &mut fx);
        let original = parse_tcp(&fx.tx[0]);
        assert!(original.flags.contains(Flags::SYN | Flags::ACK));
        assert_eq!(original.ack, 1001);
        let (delay, token) = fx.timers[0];
        assert_eq!(delay, after);
        let mut fx2 = Effects::default();
        host.on_timer(token, Instant::ZERO + delay, &mut fx2);
        let replay = parse_tcp(&fx2.tx[0]);
        assert_eq!(replay.seq, original.seq);
        assert_eq!(replay.ack, original.ack);
        assert_eq!(replay.flags, original.flags);
        assert_eq!(replay.src_port, original.src_port);
        assert_eq!(replay.dst_port, original.dst_port);
        assert!(fx2.finished);
    }

    #[test]
    fn spoofed_rst_mode_answers_with_a_cookieless_rst() {
        let mut host = ChaosHost::new(HOSTIP, ChaosMode::SpoofedRst, 7);
        let mut fx = Effects::default();
        host.on_packet(&syn_datagram(40000), Instant::ZERO, &mut fx);
        let rst = parse_tcp(&fx.tx[0]);
        assert!(rst.flags.contains(Flags::RST));
        // The ack echoes the raw seq, not seq+1 — never cookie-valid.
        assert_eq!(rst.ack, 1000);
        assert_eq!(rst.dst_port, 40000);
        assert!(fx.finished);
    }

    #[test]
    fn icmp_mode_reports_unreachable_after_delay() {
        let after = Duration::from_millis(5);
        let mut host = ChaosHost::new(HOSTIP, ChaosMode::SynAckThenIcmp { after, code: 3 }, 7);
        let mut fx = Effects::default();
        host.on_packet(&syn_datagram(41000), Instant::ZERO, &mut fx);
        assert!(parse_tcp(&fx.tx[0]).flags.contains(Flags::SYN | Flags::ACK));
        let (delay, token) = fx.timers[0];
        let mut fx2 = Effects::default();
        host.on_timer(token, Instant::ZERO + delay, &mut fx2);
        let ip = ipv4::Packet::new_checked(&fx2.tx[0][..]).unwrap();
        let msg = icmp::Message::parse(ip.payload()).unwrap();
        assert_eq!(msg, icmp::Message::DstUnreachable { code: 3 });
    }
}
