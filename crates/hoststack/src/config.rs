//! Static per-host configuration: which services a host runs and how they
//! behave. The population model in `iw-internet` produces these.

use crate::os::OsProfile;
use crate::policy::IwPolicy;
use iw_wire::tls::CipherSuite;

/// How a host's HTTP service responds to the probe (§3.2 taxonomy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpBehavior {
    /// `GET /` answers `200 OK` with a body of `root_size` bytes; any
    /// other URI 404s, echoing the URI when `echo_404` is set (the
    /// error-page-bloating lever only works against echoing servers).
    Direct {
        /// Body size of the root page.
        root_size: u32,
        /// Whether 404 pages embed the request URI.
        echo_404: bool,
    },
    /// `GET /` answers `301 Moved Permanently` to `http://<host><path>`;
    /// the redirect target serves `target_size` bytes. This is the
    /// virtual-hosting pattern the prober exploits to learn a valid Host
    /// header.
    Redirect {
        /// The canonical host name placed in the Location header.
        host: String,
        /// Path component of the Location header.
        path: String,
        /// Body size served at the redirect target.
        target_size: u32,
    },
    /// Everything 404s with an error page of `base_size` bytes which, when
    /// `echo_uri` is set, additionally contains the request URI — the
    /// error-page-bloating lever. (Akamai turned URI echoing *off* during
    /// the paper's scans.)
    NotFound {
        /// Error-page size before any URI echo.
        base_size: u32,
        /// Whether the page embeds the request URI.
        echo_uri: bool,
    },
    /// Accepts the request and never answers (scanner times out).
    Mute,
    /// Closes gracefully (FIN) without sending a byte.
    SilentClose,
    /// Resets the connection upon the request.
    Reset,
}

/// Configuration of a host's HTTP service.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpConfig {
    /// Response behaviour.
    pub behavior: HttpBehavior,
    /// `Server:` header value (e.g. `GHost` identifies Akamai in the
    /// paper's §4.3 service classification).
    pub server_header: String,
    /// Per-virtual-host IW overrides (Akamai's per-service/per-customer
    /// configuration): when the request's Host header matches, the
    /// connection's IW is reconfigured before the first flight.
    pub vhost_iw: Vec<(String, IwPolicy)>,
}

/// How a host's TLS service responds to the probe (§3.3 taxonomy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsBehavior {
    /// Serve the ServerHello…ServerHelloDone flight.
    Serve,
    /// Send a fatal `unrecognized_name` alert when the ClientHello lacks
    /// SNI (a major cause of the TLS "few data" bucket, §4).
    AlertWithoutSni,
    /// Close silently (FIN, zero bytes) when the ClientHello lacks SNI —
    /// the TLS "NoData" row of Table 2.
    CloseWithoutSni,
    /// No cipher overlap with the probe's 40-suite list: fatal
    /// `handshake_failure` alert.
    CipherMismatch,
    /// Accept the ClientHello and never answer.
    Mute,
    /// Reset upon the ClientHello.
    Reset,
}

/// Configuration of a host's TLS service.
#[derive(Debug, Clone, PartialEq)]
pub struct TlsConfig {
    /// Response behaviour.
    pub behavior: TlsBehavior,
    /// The cipher suite the server selects when serving.
    pub cipher: CipherSuite,
    /// Certificate chain: DER lengths of each certificate. The sum is the
    /// Fig. 2 "certificate chain length".
    pub cert_lens: Vec<u32>,
    /// Length of a stapled OCSP response, when the server supports the
    /// probe's status_request extension.
    pub ocsp_len: Option<u32>,
    /// Per-SNI IW overrides (the TLS face of Akamai-style per-service
    /// configuration).
    pub sni_iw: Vec<(String, IwPolicy)>,
}

impl TlsConfig {
    /// Total chain length in bytes (the Fig. 2 metric).
    pub fn chain_len(&self) -> u32 {
        self.cert_lens.iter().sum()
    }
}

/// Everything that defines one simulated host.
#[derive(Debug, Clone, PartialEq)]
pub struct HostConfig {
    /// TCP personality.
    pub os: OsProfile,
    /// Initial-window policy (the quantity under measurement).
    pub iw: IwPolicy,
    /// HTTP service on port 80, if deployed.
    pub http: Option<HttpConfig>,
    /// TLS service on port 443, if deployed.
    pub tls: Option<TlsConfig>,
    /// Path MTU towards this host, reported by the simulated
    /// constricting router via ICMP Fragmentation Needed (footnote 1).
    pub path_mtu: u32,
    /// Whether the host answers ICMP echo at all.
    pub icmp: bool,
}

impl HostConfig {
    /// A plain Linux IW10 web server — the common case.
    pub fn simple_web(root_size: u32) -> HostConfig {
        HostConfig {
            os: OsProfile::linux(),
            iw: IwPolicy::Segments(10),
            http: Some(HttpConfig {
                behavior: HttpBehavior::Direct {
                    root_size,
                    echo_404: true,
                },
                server_header: "nginx".into(),
                vhost_iw: Vec::new(),
            }),
            tls: None,
            path_mtu: 1500,
            icmp: true,
        }
    }
}

/// The well-known ports the study probes.
pub mod ports {
    /// HTTP.
    pub const HTTP: u16 = 80;
    /// HTTPS/TLS.
    pub const TLS: u16 = 443;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_len_sums() {
        let tls = TlsConfig {
            behavior: TlsBehavior::Serve,
            cipher: CipherSuite::ECDHE_RSA_AES128_GCM,
            cert_lens: vec![1200, 800, 186],
            ocsp_len: None,
            sni_iw: Vec::new(),
        };
        assert_eq!(tls.chain_len(), 2186);
    }

    #[test]
    fn simple_web_has_http_only() {
        let h = HostConfig::simple_web(4096);
        assert!(h.http.is_some());
        assert!(h.tls.is_none());
        assert_eq!(h.iw, IwPolicy::Segments(10));
    }
}
