//! The application interface between a [`crate::tcb::Tcb`] and the
//! protocol servers running on top of it.
//!
//! An application consumes the in-order receive stream and, when it has a
//! complete request, hands the TCB a response plus a disposition: keep the
//! connection, close it gracefully (FIN *after* the response drains — the
//! ordering §3.2's exhaustion check exploits), or abort it (RST).
//!
//! Responses may also carry a **per-service IW override** — the paper's
//! §4.3/§5 observation that Akamai configures initial windows per
//! service and even per customer. The edge node picks the congestion
//! configuration once it knows which property is being served (Host
//! header / SNI), i.e. just before the first data flight.

/// What the application wants done after producing (or not producing) a
/// response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppResponse {
    /// Bytes to transmit. May be empty (e.g. a silent close).
    pub data: Vec<u8>,
    /// Deterministic filler appended (lazily) after `data`: this many
    /// bytes of [`FILL_PATTERN`], cycled from position zero. The TCB
    /// materializes them only as the peer's window pulls them, so a
    /// server can promise a multi-hundred-kilobyte page while a probe
    /// that RSTs after the initial flight never pays for the tail.
    pub fill: usize,
    /// Graceful close: queue a FIN behind the data.
    pub close: bool,
    /// Abortive close: send a RST instead of anything else.
    pub reset: bool,
    /// Per-service initial-window override, applied before the first
    /// data flight (Akamai-style per-customer configuration, §4.3).
    pub iw_override: Option<crate::policy::IwPolicy>,
}

impl AppResponse {
    /// Respond and keep the connection open.
    pub fn send(data: Vec<u8>) -> AppResponse {
        AppResponse {
            data,
            fill: 0,
            close: false,
            reset: false,
            iw_override: None,
        }
    }

    /// Respond, then close gracefully once the data drained.
    pub fn send_and_close(data: Vec<u8>) -> AppResponse {
        AppResponse {
            data,
            fill: 0,
            close: true,
            reset: false,
            iw_override: None,
        }
    }

    /// Close immediately without sending anything.
    pub fn silent_close() -> AppResponse {
        AppResponse {
            data: Vec::new(),
            fill: 0,
            close: true,
            reset: false,
            iw_override: None,
        }
    }

    /// Abort the connection.
    pub fn abort() -> AppResponse {
        AppResponse {
            data: Vec::new(),
            fill: 0,
            close: false,
            reset: true,
            iw_override: None,
        }
    }
}

/// The deterministic filler the simulated servers pad pages with.
///
/// [`AppResponse::fill`] counts bytes of this pattern, cycled from
/// position zero; the TCB materializes them on demand.
pub const FILL_PATTERN: &[u8] = b"The quick brown fox jumps over the lazy dog. ";

/// Append `n` bytes continuing the filler cycle of the region that
/// starts at `base` (i.e. `out[base]` holds pattern position zero).
pub fn fill_pattern_continue(out: &mut Vec<u8>, base: usize, mut n: usize) {
    out.reserve(n);
    while n > 0 {
        let pos = (out.len() - base) % FILL_PATTERN.len();
        let take = (FILL_PATTERN.len() - pos).min(n);
        out.extend_from_slice(&FILL_PATTERN[pos..pos + take]);
        n -= take;
    }
}

/// A connection-scoped application (one instance per TCP connection).
pub trait App {
    /// In-order stream bytes arrived. Return `Some` once a complete
    /// request has been assembled; `None` keeps buffering.
    fn on_data(&mut self, data: &[u8]) -> Option<AppResponse>;
}

/// An application that never answers — the "no data" hosts of Table 2.
#[derive(Debug, Default)]
pub struct SilentApp {
    /// Whether to close (FIN) on first request instead of staying mute.
    pub close_on_request: bool,
}

impl App for SilentApp {
    fn on_data(&mut self, _data: &[u8]) -> Option<AppResponse> {
        if self.close_on_request {
            Some(AppResponse::silent_close())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(
            AppResponse::send(vec![1]),
            AppResponse {
                data: vec![1],
                fill: 0,
                close: false,
                reset: false,
                iw_override: None,
            }
        );
        assert!(AppResponse::send_and_close(vec![]).close);
        assert!(AppResponse::abort().reset);
        let s = AppResponse::silent_close();
        assert!(s.close && s.data.is_empty());
    }

    #[test]
    fn silent_app_behaviour() {
        let mut mute = SilentApp {
            close_on_request: false,
        };
        assert_eq!(mute.on_data(b"GET / HTTP/1.1\r\n\r\n"), None);
        let mut closer = SilentApp {
            close_on_request: true,
        };
        assert_eq!(closer.on_data(b"x"), Some(AppResponse::silent_close()));
    }
}
