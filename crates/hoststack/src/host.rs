//! A complete simulated host: per-port TCP listeners, connection
//! demultiplexing, and the ICMP path-MTU responder — wired into
//! `iw-netsim` as an [`Endpoint`].

use crate::app::App;
use crate::config::{ports, HostConfig};
use crate::http_app::HttpApp;
use crate::tcb::{Tcb, TcbOutput};
use crate::tls_app::TlsApp;
use iw_netsim::{Effects, Endpoint, Instant, TimerToken};
use iw_wire::ipv4::Ipv4Addr;
use iw_wire::tcp::{self, Flags};
use iw_wire::{icmp, ipv4, IpProtocol};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Connection key: (peer address, peer port, local port).
type ConnKey = (u32, u16, u16);

/// A simulated host at a fixed IPv4 address.
pub struct Host {
    ip: Ipv4Addr,
    config: HostConfig,
    // Live connections. A probe host holds at most a couple at a time
    // (the scanner walks its connections sequentially), so a linear-scan
    // vector beats a hash map on every per-packet lookup.
    conns: Vec<(ConnKey, Tcb)>,
    rng: SmallRng,
    ip_ident: u16,
}

impl Host {
    /// Create a host; `seed` feeds ISN generation deterministically.
    pub fn new(ip: Ipv4Addr, config: HostConfig, seed: u64) -> Host {
        Host {
            ip,
            config,
            conns: Vec::new(),
            rng: SmallRng::seed_from_u64(seed ^ u64::from(ip.to_u32())),
            ip_ident: 1,
        }
    }

    /// The host's address.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// Live connection count (diagnostics).
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    fn conn_mut(&mut self, key: ConnKey) -> Option<&mut Tcb> {
        self.conns
            .iter_mut()
            .find(|(k, _)| *k == key)
            .map(|(_, tcb)| tcb)
    }

    fn app_for_port(&self, port: u16) -> Option<Box<dyn App>> {
        match port {
            ports::HTTP => self
                .config
                .http
                .as_ref()
                .map(|c| Box::new(HttpApp::new(c.clone())) as Box<dyn App>),
            ports::TLS => self
                .config
                .tls
                .as_ref()
                .map(|c| Box::new(TlsApp::new(c.clone())) as Box<dyn App>),
            _ => None,
        }
    }

    fn emit_segment(&mut self, peer: Ipv4Addr, repr: &tcp::Repr, fx: &mut Effects) {
        let ip = self.ip;
        let mut buf = fx.buffer();
        ipv4::build_datagram_into(
            &ipv4::Repr {
                src_addr: ip,
                dst_addr: peer,
                protocol: IpProtocol::Tcp,
                payload_len: repr.buffer_len(),
                ttl: 64,
            },
            self.ip_ident,
            &mut buf,
            |l4| repr.emit_into(ip, peer, l4),
        );
        self.ip_ident = self.ip_ident.wrapping_add(1);
        fx.send(buf.freeze());
    }

    fn apply_tcb_output(
        &mut self,
        key: ConnKey,
        peer: Ipv4Addr,
        out: TcbOutput,
        now: Instant,
        fx: &mut Effects,
    ) {
        for repr in &out.tx {
            self.emit_segment(peer, repr, fx);
        }
        if let Some(deadline) = out.deadline {
            if deadline > now
                && self
                    .conn_mut(key)
                    .is_none_or(|tcb| tcb.should_arm(deadline))
            {
                fx.arm(deadline - now, token_for(key));
            }
        }
        if let Some(pos) = self
            .conns
            .iter()
            .position(|(k, tcb)| *k == key && tcb.is_closed())
        {
            self.conns.swap_remove(pos);
        }
        fx.finished = self.conns.is_empty();
    }

    fn handle_tcp(&mut self, ip_repr: &ipv4::Repr, payload: &[u8], now: Instant, fx: &mut Effects) {
        let Ok(packet) = tcp::Packet::new_checked(payload) else {
            return;
        };
        let Ok(seg) = tcp::Repr::parse(&packet, ip_repr.src_addr, ip_repr.dst_addr) else {
            return;
        };
        let peer = ip_repr.src_addr;
        let key: ConnKey = (peer.to_u32(), seg.src_port, seg.dst_port);

        if let Some(tcb) = self.conn_mut(key) {
            let out = tcb.on_segment(&seg, now);
            self.apply_tcb_output(key, peer, out, now, fx);
            return;
        }

        // No connection: a SYN to an open port creates one.
        if seg.flags.contains(Flags::SYN) && !seg.flags.contains(Flags::ACK) {
            if let Some(app) = self.app_for_port(seg.dst_port) {
                let isn: u32 = self.rng.gen();
                let (tcb, out) = Tcb::accept(
                    self.ip,
                    peer,
                    seg.dst_port,
                    seg.src_port,
                    self.config.os.clone(),
                    self.config.iw,
                    app,
                    &seg,
                    isn,
                    now,
                );
                self.conns.push((key, tcb));
                self.apply_tcb_output(key, peer, out, now, fx);
                return;
            }
        }

        // Closed port or stray segment: RST (but never RST a RST).
        if !seg.flags.contains(Flags::RST) {
            let (rst_seq, rst_ack, rst_flags) = if seg.flags.contains(Flags::ACK) {
                (seg.ack, 0, Flags::RST)
            } else {
                (
                    0,
                    seg.seq.wrapping_add(seg.seq_len()),
                    Flags::RST | Flags::ACK,
                )
            };
            let rst = tcp::Repr::bare(seg.dst_port, seg.src_port, rst_seq, rst_ack, rst_flags, 0);
            self.emit_segment(peer, &rst, fx);
        }
        fx.finished = self.conns.is_empty();
    }

    fn handle_icmp(&mut self, ip_repr: &ipv4::Repr, payload: &[u8], fx: &mut Effects) {
        if !self.config.icmp {
            fx.finished = self.conns.is_empty();
            return;
        }
        let Ok(msg) = icmp::Message::parse(payload) else {
            return;
        };
        if let icmp::Message::EchoRequest {
            ident,
            seq,
            payload_len,
        } = msg
        {
            let total_len = (ipv4::HEADER_LEN + icmp::HEADER_LEN + payload_len) as u32;
            let reply = if total_len > self.config.path_mtu {
                // A constricting router on the path reports its MTU
                // (RFC 1191); we stand in for it.
                icmp::Message::FragNeeded {
                    mtu: self.config.path_mtu as u16,
                }
            } else {
                icmp::Message::EchoReply {
                    ident,
                    seq,
                    payload_len,
                }
            };
            let mut buf = fx.buffer();
            ipv4::build_datagram_into(
                &ipv4::Repr {
                    src_addr: self.ip,
                    dst_addr: ip_repr.src_addr,
                    protocol: IpProtocol::Icmp,
                    payload_len: reply.buffer_len(),
                    ttl: 64,
                },
                self.ip_ident,
                &mut buf,
                |l4| reply.emit_into(l4),
            );
            self.ip_ident = self.ip_ident.wrapping_add(1);
            fx.send(buf.freeze());
        }
        fx.finished = self.conns.is_empty();
    }
}

/// Encode a connection key into a timer token (ip32 | sport16 | dport16).
fn token_for(key: ConnKey) -> TimerToken {
    (u64::from(key.0) << 32) | (u64::from(key.1) << 16) | u64::from(key.2)
}

fn key_for(token: TimerToken) -> ConnKey {
    (
        (token >> 32) as u32,
        ((token >> 16) & 0xffff) as u16,
        (token & 0xffff) as u16,
    )
}

impl Endpoint for Host {
    fn on_packet(&mut self, pkt: &[u8], now: Instant, fx: &mut Effects) {
        let Ok(packet) = ipv4::Packet::new_checked(pkt) else {
            return;
        };
        let Ok(ip_repr) = ipv4::Repr::parse(&packet) else {
            return;
        };
        if ip_repr.dst_addr != self.ip {
            return;
        }
        let payload = packet.payload();
        match ip_repr.protocol {
            IpProtocol::Tcp => self.handle_tcp(&ip_repr, payload, now, fx),
            IpProtocol::Icmp => self.handle_icmp(&ip_repr, payload, fx),
            IpProtocol::Unknown(_) => {}
        }
    }

    fn on_timer(&mut self, token: TimerToken, now: Instant, fx: &mut Effects) {
        let key = key_for(token);
        let peer = Ipv4Addr::from_u32(key.0);
        if let Some(tcb) = self.conn_mut(key) {
            let out = tcb.on_timer(now);
            self.apply_tcb_output(key, peer, out, now, fx);
        } else {
            fx.finished = self.conns.is_empty();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCAN: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const HOSTIP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);

    fn datagram(seg: &tcp::Repr) -> Vec<u8> {
        let l4 = seg.emit(SCAN, HOSTIP);
        ipv4::build_datagram(
            &ipv4::Repr {
                src_addr: SCAN,
                dst_addr: HOSTIP,
                protocol: IpProtocol::Tcp,
                payload_len: l4.len(),
                ttl: 64,
            },
            7,
            &l4,
        )
    }

    fn parse_reply(pkt: &[u8]) -> tcp::Repr {
        let ip = ipv4::Packet::new_checked(pkt).unwrap();
        let seg = tcp::Packet::new_checked(ip.payload()).unwrap();
        tcp::Repr::parse(&seg, ip.src_addr(), ip.dst_addr()).unwrap()
    }

    fn web_host() -> Host {
        Host::new(HOSTIP, HostConfig::simple_web(50_000), 1)
    }

    fn syn(port: u16) -> tcp::Repr {
        tcp::Repr {
            src_port: 40000,
            dst_port: port,
            seq: 100,
            ack: 0,
            flags: Flags::SYN,
            window: 65535,
            options: vec![tcp::TcpOption::Mss(64)],
            payload: vec![],
        }
    }

    #[test]
    fn syn_to_open_port_gets_syn_ack() {
        let mut host = web_host();
        let mut fx = Effects::default();
        host.on_packet(&datagram(&syn(80)), Instant::ZERO, &mut fx);
        assert_eq!(fx.tx.len(), 1);
        let reply = parse_reply(&fx.tx[0]);
        assert!(reply.flags.contains(Flags::SYN | Flags::ACK));
        assert_eq!(reply.ack, 101);
        assert_eq!(host.conn_count(), 1);
        assert!(!fx.finished);
        assert!(!fx.timers.is_empty(), "SYN-ACK retransmit timer armed");
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let mut host = web_host();
        let mut fx = Effects::default();
        host.on_packet(&datagram(&syn(443)), Instant::ZERO, &mut fx);
        assert_eq!(fx.tx.len(), 1);
        let reply = parse_reply(&fx.tx[0]);
        assert!(reply.flags.contains(Flags::RST));
        assert_eq!(host.conn_count(), 0);
        assert!(fx.finished);
    }

    #[test]
    fn full_probe_exchange_counts_iw() {
        let mut host = web_host();
        let mut fx = Effects::default();
        host.on_packet(&datagram(&syn(80)), Instant::ZERO, &mut fx);
        let synack = parse_reply(&fx.tx[0]);

        let req = tcp::Repr {
            src_port: 40000,
            dst_port: 80,
            seq: 101,
            ack: synack.seq.wrapping_add(1),
            flags: Flags::ACK | Flags::PSH,
            window: 65535,
            options: vec![],
            payload: iw_wire::http::Request::probe_get("/", "198.51.100.1").to_bytes(),
        };
        let mut fx2 = Effects::default();
        host.on_packet(&datagram(&req), Instant::ZERO, &mut fx2);
        // IW 10 at MSS 64: ten 64-byte data segments.
        assert_eq!(fx2.tx.len(), 10);
        let segs: Vec<_> = fx2.tx.iter().map(|p| parse_reply(p)).collect();
        assert!(segs.iter().all(|s| s.payload.len() == 64));
    }

    #[test]
    fn timer_token_round_trip() {
        let key = (0xc0a80001u32, 40000u16, 443u16);
        assert_eq!(key_for(token_for(key)), key);
    }

    #[test]
    fn icmp_echo_and_path_mtu() {
        let mut host = web_host(); // path_mtu 1500
        let small = icmp::Message::EchoRequest {
            ident: 7,
            seq: 1,
            payload_len: 100,
        };
        let l4 = small.emit();
        let dg = ipv4::build_datagram(
            &ipv4::Repr {
                src_addr: SCAN,
                dst_addr: HOSTIP,
                protocol: IpProtocol::Icmp,
                payload_len: l4.len(),
                ttl: 64,
            },
            1,
            &l4,
        );
        let mut fx = Effects::default();
        host.on_packet(&dg, Instant::ZERO, &mut fx);
        let ip = ipv4::Packet::new_checked(&fx.tx[0][..]).unwrap();
        let reply = icmp::Message::parse(ip.payload()).unwrap();
        assert!(matches!(reply, icmp::Message::EchoReply { ident: 7, .. }));

        // Oversized probe: FragNeeded with the path MTU.
        let big = icmp::Message::EchoRequest {
            ident: 7,
            seq: 2,
            payload_len: 1600,
        };
        let l4 = big.emit();
        let dg = ipv4::build_datagram(
            &ipv4::Repr {
                src_addr: SCAN,
                dst_addr: HOSTIP,
                protocol: IpProtocol::Icmp,
                payload_len: l4.len(),
                ttl: 64,
            },
            2,
            &l4,
        );
        let mut fx = Effects::default();
        host.on_packet(&dg, Instant::ZERO, &mut fx);
        let ip = ipv4::Packet::new_checked(&fx.tx[0][..]).unwrap();
        let reply = icmp::Message::parse(ip.payload()).unwrap();
        assert_eq!(reply, icmp::Message::FragNeeded { mtu: 1500 });
    }

    #[test]
    fn packet_to_wrong_ip_is_ignored() {
        let mut host = Host::new(Ipv4Addr::new(10, 0, 0, 1), HostConfig::simple_web(100), 1);
        let mut fx = Effects::default();
        host.on_packet(&datagram(&syn(80)), Instant::ZERO, &mut fx);
        assert!(fx.tx.is_empty());
    }

    #[test]
    fn rst_is_never_answered() {
        let mut host = web_host();
        let rst = tcp::Repr::bare(40000, 80, 5, 0, Flags::RST, 0);
        let mut fx = Effects::default();
        host.on_packet(&datagram(&rst), Instant::ZERO, &mut fx);
        assert!(fx.tx.is_empty());
    }

    #[test]
    fn stray_ack_gets_rst_with_its_ack_as_seq() {
        let mut host = web_host();
        let stray = tcp::Repr::bare(40000, 80, 55, 777, Flags::ACK, 100);
        let mut fx = Effects::default();
        host.on_packet(&datagram(&stray), Instant::ZERO, &mut fx);
        let reply = parse_reply(&fx.tx[0]);
        assert!(reply.flags.contains(Flags::RST));
        assert_eq!(reply.seq, 777);
    }

    #[test]
    fn retransmit_via_timer_pipeline() {
        let mut host = web_host();
        let mut fx = Effects::default();
        host.on_packet(&datagram(&syn(80)), Instant::ZERO, &mut fx);
        let synack = parse_reply(&fx.tx[0]);
        let req = tcp::Repr {
            src_port: 40000,
            dst_port: 80,
            seq: 101,
            ack: synack.seq.wrapping_add(1),
            flags: Flags::ACK | Flags::PSH,
            window: 65535,
            options: vec![],
            payload: iw_wire::http::Request::probe_get("/", "h").to_bytes(),
        };
        let mut fx2 = Effects::default();
        host.on_packet(&datagram(&req), Instant::ZERO, &mut fx2);
        let first = parse_reply(&fx2.tx[0]);
        // Duplicate arms for an unchanged deadline are suppressed, so the
        // pending RTO timer is the one armed with the handshake output.
        let (delay, token) = fx2.timers.last().or(fx.timers.last()).copied().unwrap();
        // Fire the RTO.
        let mut fx3 = Effects::default();
        host.on_timer(token, Instant::ZERO + delay, &mut fx3);
        assert_eq!(fx3.tx.len(), 1, "one retransmission");
        let rtx = parse_reply(&fx3.tx[0]);
        assert_eq!(rtx.seq, first.seq, "first segment retransmitted");
        assert_eq!(rtx.payload, first.payload);
    }

    #[test]
    fn timer_for_dead_conn_is_harmless() {
        let mut host = web_host();
        let mut fx = Effects::default();
        host.on_timer(token_for((1, 2, 3)), Instant::ZERO, &mut fx);
        assert!(fx.tx.is_empty());
        assert!(fx.finished);
    }
}
