//! # iw-hoststack — the probed side of the measurement
//!
//! A from-scratch, server-side TCP stack plus the HTTP and TLS server
//! behaviours the Internet exposed to the paper's scanner. Everything the
//! IW-inference methodology *feeds on* lives here:
//!
//! * [`policy::IwPolicy`] — how a host sizes its initial congestion
//!   window: a segment count (RFC 2001/2414/3390/6928 style), a byte
//!   budget (the 4 kB Technicolor modems of §4.2), an MTU-fill budget
//!   (the 1536 B hosts), or the literal RFC 6928 byte formula;
//! * [`os::OsProfile`] — MSS-negotiation quirks ("Linux will typically
//!   reject an MSS below 64 B; all tested variants of Microsoft Windows
//!   default to 536 B if the MSS falls below that value", §3.1);
//! * [`tcb::Tcb`] — the connection state machine: handshake, slow start,
//!   RTO retransmission (the retransmit of the first segment *is* the
//!   measurement signal), flow control against the scanner's shrunken
//!   window, FIN-behind-data semantics (§3.2's exhaustion signal);
//! * [`http_app`] / [`tls_app`] — application behaviours: virtual-host
//!   redirects, URI-echoing 404 pages, `Connection: close` handling,
//!   certificate-chain flights, SNI-required closures, cipher mismatch
//!   alerts, OCSP stapling;
//! * [`host::Host`] — a complete simulated host wired into `iw-netsim`,
//!   with per-port listeners and the ICMP path-MTU responder used by the
//!   footnote-1 experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod chaos;
pub mod config;
pub mod host;
pub mod http_app;
pub mod os;
pub mod policy;
pub mod tcb;
pub mod tls_app;

pub use chaos::{ChaosHost, ChaosMode};
pub use config::{HostConfig, HttpBehavior, HttpConfig, TlsBehavior, TlsConfig};
pub use host::Host;
pub use os::OsProfile;
pub use policy::IwPolicy;
