//! Initial congestion window policies.
//!
//! RFC 6928 defines the IW in *bytes* as a function of the MSS:
//!
//! ```text
//! IW = min(10 · MSS, max(2 · MSS, 14600))
//! ```
//!
//! but deployed stacks interpret "initial window" in several distinct
//! ways, which the paper's dual-MSS scan (§4.2) is designed to tell
//! apart. This module captures every configuration family the paper
//! observed.

/// How a host computes its initial congestion window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IwPolicy {
    /// A fixed number of segments: cwnd = n · MSS. The dominant style
    /// (IW 1, 2, 4, 10 from RFCs 2001/2414/3390/6928 — and the odd static
    /// IW 48 of GoDaddy or IW 25/64 peaks in Fig. 3).
    Segments(u32),
    /// A fixed byte budget independent of MSS: cwnd = n bytes. §4.2's
    /// 4 kB hosts (Technicolor modems at Telmex, power-supply monitors)
    /// send 64 segments at MSS 64 and 32 at MSS 128.
    Bytes(u32),
    /// Fill one network MTU worth of bytes: the §4.2 subgroup summing to
    /// 1536 B (24 segments at MSS 64, 12 at MSS 128).
    MtuFill(u32),
    /// The literal RFC 6928 formula, including the 14600 B cap that only
    /// binds for large MSS values.
    Rfc6928,
}

impl IwPolicy {
    /// The initial congestion window in bytes for a negotiated MSS.
    ///
    /// Every policy grants at least one MSS so a host can always make
    /// progress (a zero-byte cwnd would deadlock real stacks too).
    pub fn initial_cwnd(self, mss: u32) -> u32 {
        let bytes = match self {
            IwPolicy::Segments(n) => n.saturating_mul(mss),
            IwPolicy::Bytes(n) => n,
            IwPolicy::MtuFill(total) => total,
            IwPolicy::Rfc6928 => (10 * mss).min((2 * mss).max(14600)),
        };
        bytes.max(mss)
    }

    /// The number of full segments the initial window admits — what the
    /// scanner ultimately reports (⌊cwnd / MSS⌋, min 1).
    pub fn initial_segments(self, mss: u32) -> u32 {
        (self.initial_cwnd(mss) / mss).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_policies_scale_with_mss() {
        assert_eq!(IwPolicy::Segments(10).initial_cwnd(64), 640);
        assert_eq!(IwPolicy::Segments(10).initial_cwnd(128), 1280);
        assert_eq!(IwPolicy::Segments(10).initial_segments(64), 10);
        assert_eq!(IwPolicy::Segments(10).initial_segments(128), 10);
    }

    #[test]
    fn byte_policies_halve_segments_when_mss_doubles() {
        // The §4.2 fingerprint: 4 kB hosts.
        let p = IwPolicy::Bytes(4096);
        assert_eq!(p.initial_segments(64), 64);
        assert_eq!(p.initial_segments(128), 32);
    }

    #[test]
    fn mtu_fill_fingerprint() {
        let p = IwPolicy::MtuFill(1536);
        assert_eq!(p.initial_segments(64), 24);
        assert_eq!(p.initial_segments(128), 12);
    }

    #[test]
    fn rfc6928_formula() {
        // At tiny MSS the 10·MSS term wins.
        assert_eq!(IwPolicy::Rfc6928.initial_cwnd(64), 640);
        assert_eq!(IwPolicy::Rfc6928.initial_segments(64), 10);
        // At a typical MSS it still wins (14600 > 14360).
        assert_eq!(IwPolicy::Rfc6928.initial_cwnd(1436), 14360);
        // At jumbo MSS the byte cap binds: min(10·1940, max(2·1940, 14600)).
        assert_eq!(IwPolicy::Rfc6928.initial_cwnd(1940), 14600);
        // At huge MSS the 2·MSS floor wins.
        assert_eq!(IwPolicy::Rfc6928.initial_cwnd(9000), 18000);
    }

    #[test]
    fn never_below_one_mss() {
        assert_eq!(IwPolicy::Bytes(10).initial_cwnd(536), 536);
        assert_eq!(IwPolicy::Bytes(10).initial_segments(536), 1);
        assert_eq!(IwPolicy::Segments(0).initial_cwnd(64), 64);
    }

    #[test]
    fn windows_mss_floor_interaction() {
        // A Windows host forced to 536 B segments with IW 4 sends
        // 4 × 536 bytes; the scanner divides by the *observed* segment
        // size and still reports 4.
        let p = IwPolicy::Segments(4);
        assert_eq!(p.initial_cwnd(536) / 536, 4);
    }
}
