//! `iwscan` binary: see `iwscan help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match iw_cli::run(&argv) {
        Ok(code) => std::process::exit(code),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
