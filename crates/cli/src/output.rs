//! Torn-output hardening: every artifact the CLI persists goes through
//! one temp-file-plus-rename helper, so a crash mid-write can never
//! leave a half-written results file, telemetry snapshot or checkpoint
//! behind — the destination either holds the previous complete version
//! or the new complete version.

use std::fs;
use std::io;

/// The sibling temp path a pending write stages into (`<path>.tmp`).
pub fn tmp_path(path: &str) -> String {
    format!("{path}.tmp")
}

/// Atomically replace `path` with `contents`: write to the sibling temp
/// file, then rename over the destination (atomic on POSIX filesystems).
pub fn write_atomic(path: &str, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let tmp = tmp_path(path);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// Promote an already-staged `<path>.tmp` (written by a third-party
/// writer such as the pcap exporter) into place.
pub fn commit_tmp(path: &str) -> io::Result<()> {
    fs::rename(tmp_path(path), path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join("iwscan-output-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json").to_string_lossy().into_owned();
        write_atomic(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        assert!(!std::path::Path::new(&tmp_path(&path)).exists());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn commit_promotes_a_staged_file() {
        let dir = std::env::temp_dir().join("iwscan-output-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("staged.bin").to_string_lossy().into_owned();
        fs::write(tmp_path(&path), b"payload").unwrap();
        commit_tmp(&path).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload");
        assert!(!std::path::Path::new(&tmp_path(&path)).exists());
        let _ = fs::remove_file(&path);
    }
}
