//! # iwscan — the command-line front end
//!
//! A small, dependency-free argument layer over the library: build a
//! world, scan it, probe single hosts, export traces. Run
//! `iwscan help` for usage. The parsing lives in the library so it can
//! be unit-tested; `main.rs` is a thin shell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod output;

pub use args::{Cli, Command, ParseError};

/// Entry point shared by the binary and tests: parse and dispatch.
pub fn run(argv: &[String]) -> Result<i32, String> {
    let cli = match args::Cli::parse(argv) {
        Ok(cli) => cli,
        Err(ParseError::HelpRequested) => {
            println!("{}", args::USAGE);
            return Ok(0);
        }
        Err(e) => return Err(format!("{e}\n\n{}", args::USAGE)),
    };
    commands::dispatch(&cli).map_err(|e| e.to_string())
}
