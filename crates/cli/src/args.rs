//! Argument parsing (hand-rolled: the tool has four subcommands and a
//! dozen flags — a parser generator would be the heaviest dependency in
//! the workspace).

use core::fmt;

/// Usage text.
pub const USAGE: &str = "\
iwscan — TCP initial-window measurement (IMC'17 reproduction)

USAGE:
    iwscan <COMMAND> [FLAGS]

COMMANDS:
    scan        Scan a synthetic Internet (full space or a sample)
    probe       Measure one testbed host with a known configuration
    alexa       Scan the synthetic popularity list (known domains)
    mtu         RFC 1191 ICMP path-MTU discovery scan
    inspect     Summarize a telemetry file (stream/flight JSONL or trace JSON)
    help        Show this message

SCAN FLAGS:
    --protocol <http|tls|portscan>   protocol module   [default: http]
    --scale <small|medium|large>     world size        [default: small]
    --seed <u64>                     scan + world seed [default: 319033367]
    --sample <0.0..=1.0>             fraction of the space to probe [default: 1]
    --threads <n>                    sender + receiver threads [default: all cores]
    --shards <n>                     alias for --threads
    --senders <n>                    TX feeder threads (overrides --threads)
    --receivers <n>                  receiver workers  [default: senders]
    --loss <factor>                  link-loss scale   [default: 0]
    --json <path>                    write per-host results as JSON
    --quiet                          suppress the histogram
    --monitor                        print ZMap-style progress lines
    --metrics-out <path>             write the telemetry snapshot as JSON
    --pcap <path>                    record the scan and save it as pcap
    --stateless-first                ZBanner-style hybrid mode: stateless cookie
                                     discovery, stateful sessions for responders
    --syn-retries <n>                SYN retransmits for silent targets [default: 0]
    --probe-retries <n>              retry budget per probe connection  [default: 0]
    --watchdog <secs>                per-session deadline, 0 = off      [default: 0]
    --max-sessions <n>               live-session cap, 0 = unbounded    [default: 0]
    --trace-out <path>               write session spans as Chrome trace JSON
    --stream-out <path>              stream metric deltas + results as JSONL
    --flight-out <path>              dump failed-session flight records as JSONL
    --checkpoint-out <path>          write/refresh a campaign checkpoint file
    --checkpoint-every <secs>        periodic checkpoint interval (virtual time)
                                     [default: 10, with --checkpoint-out]
    --resume <path>                  resume a killed campaign from its checkpoint
    --kill-after-events <n>          crash injection: die after n events per shard
    --abort-after <secs>             graceful shutdown at this virtual time

INSPECT FLAGS:
    <file>                           telemetry file to summarize
    --filter <substr>                keep only records containing the substring
    --top <n>                        breakdown rows per section [default: 10]

PROBE FLAGS:
    --iw <n>                         segments          [default: 10]
    --policy <segments|bytes|mtufill|rfc6928>          [default: segments]
    --os <linux|windows|embedded|bsd>                  [default: linux]
    --protocol <http|tls>                              [default: http]
    --body <bytes>                   response size     [default: 50000]
    --loss <0.0..1.0>                random loss       [default: 0]
    --pcap <path>                    save the packet trace as pcap
    --seed <u64>                                       [default: 7]

ALEXA FLAGS:
    --n <count>                      list length       [default: 400]
    --protocol <http|tls>                              [default: http]
    --scale, --seed                  as for scan
";

/// Parse failure.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// `help`/`--help` was requested (not an error).
    HelpRequested,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Unknown flag for the subcommand.
    UnknownFlag(String),
    /// A flag was given without its value.
    MissingValue(String),
    /// A value failed to parse.
    BadValue(String, String),
    /// No subcommand given.
    NoCommand,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::HelpRequested => write!(f, "help requested"),
            ParseError::UnknownCommand(c) => write!(f, "unknown command '{c}'"),
            ParseError::UnknownFlag(flag) => write!(f, "unknown flag '{flag}'"),
            ParseError::MissingValue(flag) => write!(f, "flag '{flag}' needs a value"),
            ParseError::BadValue(flag, v) => write!(f, "bad value '{v}' for '{flag}'"),
            ParseError::NoCommand => write!(f, "no command given"),
        }
    }
}

/// Scan-style options shared by `scan`, `alexa` and `mtu`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanArgs {
    /// Protocol name (validated by the command layer).
    pub protocol: String,
    /// World scale name.
    pub scale: String,
    /// Seed.
    pub seed: u64,
    /// Sampling fraction.
    pub sample: f64,
    /// Shard threads (0 = auto). `--shards` is an alias.
    pub threads: u32,
    /// Explicit TX feeder count (0 = derive from `threads`).
    pub senders: u32,
    /// Explicit receiver-worker count (0 = match the sender count).
    pub receivers: u32,
    /// Link-loss scale.
    pub loss: f64,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Suppress histogram output.
    pub quiet: bool,
    /// Print ZMap-style progress lines while scanning.
    pub monitor: bool,
    /// Stateless-first hybrid discovery (ZBanner-style).
    pub stateless_first: bool,
    /// Optional telemetry-snapshot output path.
    pub metrics_out: Option<String>,
    /// Optional pcap output path (records the scan's wire traffic).
    pub pcap: Option<String>,
    /// SYN retransmissions for silent targets (0 = single SYN).
    pub syn_retries: u32,
    /// Per-probe connection retry budget (0 = no retries).
    pub probe_retries: u32,
    /// Per-session watchdog deadline in seconds (0 = no deadline).
    pub watchdog_secs: u64,
    /// Concurrent-session cap (0 = unbounded).
    pub max_sessions: usize,
    /// Optional Chrome-trace (span profile) output path.
    pub trace_out: Option<String>,
    /// Optional streaming-telemetry JSONL output path.
    pub stream_out: Option<String>,
    /// Optional flight-recorder JSONL output path.
    pub flight_out: Option<String>,
    /// Optional campaign-checkpoint output path.
    pub checkpoint_out: Option<String>,
    /// Periodic checkpoint interval in virtual seconds (0 = final only).
    pub checkpoint_every_secs: u64,
    /// Resume from this campaign checkpoint file.
    pub resume: Option<String>,
    /// Crash injection: stop each shard after this many events (0 = off).
    pub kill_after_events: u64,
    /// Graceful-shutdown deadline in virtual seconds (0 = off).
    pub abort_after_secs: u64,
    /// Alexa list length.
    pub n: usize,
}

impl Default for ScanArgs {
    fn default() -> Self {
        ScanArgs {
            protocol: "http".into(),
            scale: "small".into(),
            seed: 0x1307_2017,
            sample: 1.0,
            threads: 0,
            senders: 0,
            receivers: 0,
            loss: 0.0,
            json: None,
            quiet: false,
            monitor: false,
            stateless_first: false,
            metrics_out: None,
            pcap: None,
            syn_retries: 0,
            probe_retries: 0,
            watchdog_secs: 0,
            max_sessions: 0,
            trace_out: None,
            stream_out: None,
            flight_out: None,
            checkpoint_out: None,
            checkpoint_every_secs: 10,
            resume: None,
            kill_after_events: 0,
            abort_after_secs: 0,
            n: 400,
        }
    }
}

/// Offline telemetry-file summarizer options.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectArgs {
    /// The file to summarize (stream/flight JSONL or Chrome trace JSON).
    pub file: String,
    /// Keep only records containing this substring.
    pub filter: Option<String>,
    /// Breakdown rows to show per section.
    pub top: usize,
}

/// Probe-style options.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeArgs {
    /// IW magnitude (segments or bytes, per `policy`).
    pub iw: u32,
    /// Policy name.
    pub policy: String,
    /// OS personality name.
    pub os: String,
    /// Protocol name.
    pub protocol: String,
    /// Response body size.
    pub body: u32,
    /// Random loss probability.
    pub loss: f64,
    /// Optional pcap output path.
    pub pcap: Option<String>,
    /// Seed.
    pub seed: u64,
}

impl Default for ProbeArgs {
    fn default() -> Self {
        ProbeArgs {
            iw: 10,
            policy: "segments".into(),
            os: "linux".into(),
            protocol: "http".into(),
            body: 50_000,
            loss: 0.0,
            pcap: None,
            seed: 7,
        }
    }
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Full-space / sampled scan.
    Scan(ScanArgs),
    /// Single-host testbed probe.
    Probe(ProbeArgs),
    /// Alexa-list scan.
    Alexa(ScanArgs),
    /// ICMP path-MTU scan.
    Mtu(ScanArgs),
    /// Offline telemetry-file summary.
    Inspect(InspectArgs),
}

/// Top-level parsed CLI.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The command to run.
    pub command: Command,
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, ParseError> {
    v.parse()
        .map_err(|_| ParseError::BadValue(flag.to_string(), v.to_string()))
}

impl Cli {
    /// Parse an argv slice (without the program name).
    pub fn parse(argv: &[String]) -> Result<Cli, ParseError> {
        let mut iter = argv.iter();
        let command = iter.next().ok_or(ParseError::NoCommand)?;
        if command == "help" || command == "--help" || command == "-h" {
            return Err(ParseError::HelpRequested);
        }
        let rest: Vec<&String> = iter.collect();
        if command == "inspect" {
            // The only command with a positional argument; parsed apart
            // from the flag-pair loop below.
            let mut args = InspectArgs {
                file: String::new(),
                filter: None,
                top: 10,
            };
            let mut file = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    flag @ ("--filter" | "--top") => {
                        let v = rest
                            .get(i + 1)
                            .ok_or_else(|| ParseError::MissingValue(flag.to_string()))?;
                        if flag == "--top" {
                            args.top = parse_num("--top", v)?;
                        } else {
                            args.filter = Some(v.to_string());
                        }
                        i += 2;
                    }
                    flag if flag.starts_with("--") => {
                        return Err(ParseError::UnknownFlag(flag.to_string()));
                    }
                    path => {
                        if file.is_some() {
                            return Err(ParseError::UnknownFlag(path.to_string()));
                        }
                        file = Some(path.to_string());
                        i += 1;
                    }
                }
            }
            args.file = file.ok_or_else(|| ParseError::MissingValue("<file>".to_string()))?;
            return Ok(Cli {
                command: Command::Inspect(args),
            });
        }
        let mut flags = std::collections::HashMap::new();
        let mut bare = std::collections::HashSet::new();
        let mut i = 0;
        while i < rest.len() {
            let flag = rest[i].as_str();
            if !flag.starts_with("--") {
                return Err(ParseError::UnknownFlag(flag.to_string()));
            }
            if flag == "--quiet" || flag == "--monitor" || flag == "--stateless-first" {
                bare.insert(flag.to_string());
                i += 1;
                continue;
            }
            let value = rest
                .get(i + 1)
                .ok_or_else(|| ParseError::MissingValue(flag.to_string()))?;
            flags.insert(flag.to_string(), value.to_string());
            i += 2;
        }

        let get = |name: &str| flags.get(name).cloned();
        let command = match command.as_str() {
            "scan" | "alexa" | "mtu" => {
                let mut args = ScanArgs::default();
                for key in flags.keys() {
                    if ![
                        "--protocol",
                        "--scale",
                        "--seed",
                        "--sample",
                        "--threads",
                        "--shards",
                        "--senders",
                        "--receivers",
                        "--loss",
                        "--json",
                        "--metrics-out",
                        "--pcap",
                        "--syn-retries",
                        "--probe-retries",
                        "--watchdog",
                        "--max-sessions",
                        "--trace-out",
                        "--stream-out",
                        "--flight-out",
                        "--checkpoint-out",
                        "--checkpoint-every",
                        "--resume",
                        "--kill-after-events",
                        "--abort-after",
                        "--n",
                    ]
                    .contains(&key.as_str())
                    {
                        return Err(ParseError::UnknownFlag(key.clone()));
                    }
                }
                if let Some(v) = get("--protocol") {
                    args.protocol = v;
                }
                if let Some(v) = get("--scale") {
                    args.scale = v;
                }
                if let Some(v) = get("--seed") {
                    args.seed = parse_num("--seed", &v)?;
                }
                if let Some(v) = get("--sample") {
                    args.sample = parse_num("--sample", &v)?;
                }
                if let Some(v) = get("--threads") {
                    args.threads = parse_num("--threads", &v)?;
                }
                if let Some(v) = get("--shards") {
                    args.threads = parse_num("--shards", &v)?;
                }
                if let Some(v) = get("--senders") {
                    args.senders = parse_num("--senders", &v)?;
                }
                if let Some(v) = get("--receivers") {
                    args.receivers = parse_num("--receivers", &v)?;
                }
                if let Some(v) = get("--loss") {
                    args.loss = parse_num("--loss", &v)?;
                }
                if let Some(v) = get("--syn-retries") {
                    args.syn_retries = parse_num("--syn-retries", &v)?;
                }
                if let Some(v) = get("--probe-retries") {
                    args.probe_retries = parse_num("--probe-retries", &v)?;
                }
                if let Some(v) = get("--watchdog") {
                    args.watchdog_secs = parse_num("--watchdog", &v)?;
                }
                if let Some(v) = get("--max-sessions") {
                    args.max_sessions = parse_num("--max-sessions", &v)?;
                }
                if let Some(v) = get("--n") {
                    args.n = parse_num("--n", &v)?;
                }
                if let Some(v) = get("--checkpoint-every") {
                    args.checkpoint_every_secs = parse_num("--checkpoint-every", &v)?;
                }
                if let Some(v) = get("--kill-after-events") {
                    args.kill_after_events = parse_num("--kill-after-events", &v)?;
                }
                if let Some(v) = get("--abort-after") {
                    args.abort_after_secs = parse_num("--abort-after", &v)?;
                }
                args.checkpoint_out = get("--checkpoint-out");
                args.resume = get("--resume");
                args.json = get("--json");
                args.metrics_out = get("--metrics-out");
                args.pcap = get("--pcap");
                args.trace_out = get("--trace-out");
                args.stream_out = get("--stream-out");
                args.flight_out = get("--flight-out");
                args.quiet = bare.contains("--quiet");
                args.monitor = bare.contains("--monitor");
                args.stateless_first = bare.contains("--stateless-first");
                match command.as_str() {
                    "scan" => Command::Scan(args),
                    "alexa" => Command::Alexa(args),
                    _ => Command::Mtu(args),
                }
            }
            "probe" => {
                let mut args = ProbeArgs::default();
                for key in flags.keys() {
                    if ![
                        "--iw",
                        "--policy",
                        "--os",
                        "--protocol",
                        "--body",
                        "--loss",
                        "--pcap",
                        "--seed",
                    ]
                    .contains(&key.as_str())
                    {
                        return Err(ParseError::UnknownFlag(key.clone()));
                    }
                }
                if let Some(v) = get("--iw") {
                    args.iw = parse_num("--iw", &v)?;
                }
                if let Some(v) = get("--policy") {
                    args.policy = v;
                }
                if let Some(v) = get("--os") {
                    args.os = v;
                }
                if let Some(v) = get("--protocol") {
                    args.protocol = v;
                }
                if let Some(v) = get("--body") {
                    args.body = parse_num("--body", &v)?;
                }
                if let Some(v) = get("--loss") {
                    args.loss = parse_num("--loss", &v)?;
                }
                if let Some(v) = get("--seed") {
                    args.seed = parse_num("--seed", &v)?;
                }
                args.pcap = get("--pcap");
                Command::Probe(args)
            }
            other => return Err(ParseError::UnknownCommand(other.to_string())),
        };
        Ok(Cli { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn scan_defaults() {
        let cli = Cli::parse(&argv("scan")).unwrap();
        match cli.command {
            Command::Scan(a) => {
                assert_eq!(a.protocol, "http");
                assert_eq!(a.sample, 1.0);
                assert!(!a.quiet);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scan_flags() {
        let cli = Cli::parse(&argv(
            "scan --protocol tls --scale medium --sample 0.01 --seed 42 --json out.json --quiet",
        ))
        .unwrap();
        match cli.command {
            Command::Scan(a) => {
                assert_eq!(a.protocol, "tls");
                assert_eq!(a.scale, "medium");
                assert_eq!(a.sample, 0.01);
                assert_eq!(a.seed, 42);
                assert_eq!(a.json.as_deref(), Some("out.json"));
                assert!(a.quiet);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scan_telemetry_flags() {
        let cli = Cli::parse(&argv(
            "scan --monitor --metrics-out m.json --pcap scan.pcap",
        ))
        .unwrap();
        match cli.command {
            Command::Scan(a) => {
                assert!(a.monitor);
                assert_eq!(a.metrics_out.as_deref(), Some("m.json"));
                assert_eq!(a.pcap.as_deref(), Some("scan.pcap"));
            }
            other => panic!("{other:?}"),
        }
        // All three default to off.
        match Cli::parse(&argv("scan")).unwrap().command {
            Command::Scan(a) => {
                assert!(!a.monitor);
                assert_eq!(a.metrics_out, None);
                assert_eq!(a.pcap, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stateless_first_is_a_bare_flag() {
        match Cli::parse(&argv("scan --stateless-first --quiet"))
            .unwrap()
            .command
        {
            Command::Scan(a) => {
                assert!(a.stateless_first);
                assert!(a.quiet);
            }
            other => panic!("{other:?}"),
        }
        match Cli::parse(&argv("scan")).unwrap().command {
            Command::Scan(a) => assert!(!a.stateless_first),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scan_observability_flags() {
        let cli = Cli::parse(&argv(
            "scan --trace-out t.json --stream-out s.jsonl --flight-out f.jsonl",
        ))
        .unwrap();
        match cli.command {
            Command::Scan(a) => {
                assert_eq!(a.trace_out.as_deref(), Some("t.json"));
                assert_eq!(a.stream_out.as_deref(), Some("s.jsonl"));
                assert_eq!(a.flight_out.as_deref(), Some("f.jsonl"));
            }
            other => panic!("{other:?}"),
        }
        // All three default to off.
        match Cli::parse(&argv("scan")).unwrap().command {
            Command::Scan(a) => {
                assert_eq!(a.trace_out, None);
                assert_eq!(a.stream_out, None);
                assert_eq!(a.flight_out, None);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            Cli::parse(&argv("probe --trace-out t.json")).unwrap_err(),
            ParseError::UnknownFlag("--trace-out".into())
        );
    }

    #[test]
    fn inspect_parsing() {
        let cli = Cli::parse(&argv("inspect stream.jsonl --filter result --top 5")).unwrap();
        match cli.command {
            Command::Inspect(a) => {
                assert_eq!(a.file, "stream.jsonl");
                assert_eq!(a.filter.as_deref(), Some("result"));
                assert_eq!(a.top, 5);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: no filter, top 10; the file is mandatory.
        match Cli::parse(&argv("inspect trace.json")).unwrap().command {
            Command::Inspect(a) => {
                assert_eq!(a.filter, None);
                assert_eq!(a.top, 10);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            Cli::parse(&argv("inspect")).unwrap_err(),
            ParseError::MissingValue("<file>".into())
        );
        assert_eq!(
            Cli::parse(&argv("inspect a.jsonl b.jsonl")).unwrap_err(),
            ParseError::UnknownFlag("b.jsonl".into())
        );
        assert_eq!(
            Cli::parse(&argv("inspect a.jsonl --bogus 1")).unwrap_err(),
            ParseError::UnknownFlag("--bogus".into())
        );
    }

    #[test]
    fn scan_resilience_flags() {
        let cli = Cli::parse(&argv(
            "scan --syn-retries 2 --probe-retries 3 --watchdog 75 --max-sessions 4096",
        ))
        .unwrap();
        match cli.command {
            Command::Scan(a) => {
                assert_eq!(a.syn_retries, 2);
                assert_eq!(a.probe_retries, 3);
                assert_eq!(a.watchdog_secs, 75);
                assert_eq!(a.max_sessions, 4096);
            }
            other => panic!("{other:?}"),
        }
        // All four default to off: a plain scan is the paper's baseline.
        match Cli::parse(&argv("scan")).unwrap().command {
            Command::Scan(a) => {
                assert_eq!(a.syn_retries, 0);
                assert_eq!(a.probe_retries, 0);
                assert_eq!(a.watchdog_secs, 0);
                assert_eq!(a.max_sessions, 0);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            Cli::parse(&argv("probe --max-sessions 1")).unwrap_err(),
            ParseError::UnknownFlag("--max-sessions".into())
        );
    }

    #[test]
    fn scan_durability_flags() {
        let cli = Cli::parse(&argv(
            "scan --checkpoint-out c.json --checkpoint-every 5 --kill-after-events 9000 \
             --abort-after 120",
        ))
        .unwrap();
        match cli.command {
            Command::Scan(a) => {
                assert_eq!(a.checkpoint_out.as_deref(), Some("c.json"));
                assert_eq!(a.checkpoint_every_secs, 5);
                assert_eq!(a.kill_after_events, 9000);
                assert_eq!(a.abort_after_secs, 120);
                assert_eq!(a.resume, None);
            }
            other => panic!("{other:?}"),
        }
        match Cli::parse(&argv("scan --resume c.json")).unwrap().command {
            Command::Scan(a) => {
                assert_eq!(a.resume.as_deref(), Some("c.json"));
                // Durability is off by default: the golden baseline scan
                // must not change shape.
                assert_eq!(a.checkpoint_out, None);
                assert_eq!(a.kill_after_events, 0);
                assert_eq!(a.abort_after_secs, 0);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            Cli::parse(&argv("probe --resume c.json")).unwrap_err(),
            ParseError::UnknownFlag("--resume".into())
        );
    }

    #[test]
    fn scan_topology_flags() {
        let cli = Cli::parse(&argv("scan --senders 4 --receivers 2")).unwrap();
        match cli.command {
            Command::Scan(a) => {
                assert_eq!(a.senders, 4);
                assert_eq!(a.receivers, 2);
                assert_eq!(a.threads, 0);
            }
            other => panic!("{other:?}"),
        }
        // --shards is a plain alias for --threads.
        match Cli::parse(&argv("scan --shards 8")).unwrap().command {
            Command::Scan(a) => {
                assert_eq!(a.threads, 8);
                assert_eq!(a.senders, 0);
                assert_eq!(a.receivers, 0);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            Cli::parse(&argv("probe --senders 4")).unwrap_err(),
            ParseError::UnknownFlag("--senders".into())
        );
    }

    #[test]
    fn probe_flags() {
        let cli = Cli::parse(&argv(
            "probe --iw 4096 --policy bytes --os windows --body 9000 --pcap t.pcap",
        ))
        .unwrap();
        match cli.command {
            Command::Probe(a) => {
                assert_eq!(a.iw, 4096);
                assert_eq!(a.policy, "bytes");
                assert_eq!(a.os, "windows");
                assert_eq!(a.body, 9000);
                assert_eq!(a.pcap.as_deref(), Some("t.pcap"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert_eq!(Cli::parse(&[]).unwrap_err(), ParseError::NoCommand);
        assert_eq!(
            Cli::parse(&argv("frobnicate")).unwrap_err(),
            ParseError::UnknownCommand("frobnicate".into())
        );
        assert_eq!(
            Cli::parse(&argv("scan --bogus 1")).unwrap_err(),
            ParseError::UnknownFlag("--bogus".into())
        );
        assert_eq!(
            Cli::parse(&argv("scan --seed")).unwrap_err(),
            ParseError::MissingValue("--seed".into())
        );
        assert_eq!(
            Cli::parse(&argv("scan --seed abc")).unwrap_err(),
            ParseError::BadValue("--seed".into(), "abc".into())
        );
        assert_eq!(
            Cli::parse(&argv("probe --n 7")).unwrap_err(),
            ParseError::UnknownFlag("--n".into())
        );
        assert_eq!(
            Cli::parse(&argv("help")).unwrap_err(),
            ParseError::HelpRequested
        );
    }

    #[test]
    fn alexa_and_mtu() {
        assert!(matches!(
            Cli::parse(&argv("alexa --n 100")).unwrap().command,
            Command::Alexa(a) if a.n == 100
        ));
        assert!(matches!(
            Cli::parse(&argv("mtu --scale small")).unwrap().command,
            Command::Mtu(_)
        ));
    }
}
