//! Command implementations: the thin glue from parsed args to the
//! library crates.

use crate::args::{Cli, Command, InspectArgs, ProbeArgs, ScanArgs};
use crate::output;
use iw_analysis::figures::render_iw_bars;
use iw_analysis::histogram::IwHistogram;
use iw_analysis::tables::Table1;
use iw_core::testbed::{probe_host, TestbedSpec};
use iw_core::{
    CampaignCheckpoint, ConfigDigest, MonitorSink, MonitorSpec, Protocol, RunControl,
    RunDisposition, ScanConfig, ScanRunner, ShardCheckpoint, TargetSpec, Topology,
    CHECKPOINT_VERSION,
};
use iw_hoststack::{HostConfig, HttpBehavior, HttpConfig, IwPolicy, OsProfile};
use iw_internet::{alexa, Population, PopulationConfig};
use iw_netsim::LinkConfig;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Command-layer failure.
#[derive(Debug)]
pub struct CmdError(String);

impl fmt::Display for CmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for CmdError {}

fn err(msg: impl Into<String>) -> CmdError {
    CmdError(msg.into())
}

fn parse_protocol(name: &str) -> Result<Protocol, CmdError> {
    match name {
        "http" => Ok(Protocol::Http),
        "tls" => Ok(Protocol::Tls),
        "portscan" => Ok(Protocol::PortScan),
        "icmp" => Ok(Protocol::IcmpMtu),
        other => Err(err(format!("unknown protocol '{other}'"))),
    }
}

fn world_dimensions(scale: &str) -> Result<(u32, u32), CmdError> {
    match scale {
        "small" => Ok((1 << 17, 2_500)),
        "medium" => Ok((1 << 19, 12_000)),
        "large" => Ok((1 << 22, 60_000)),
        other => Err(err(format!("unknown scale '{other}'"))),
    }
}

fn build_population(args: &ScanArgs) -> Result<Arc<Population>, CmdError> {
    let (space_size, target_responsive) = world_dimensions(&args.scale)?;
    Ok(Arc::new(Population::new(PopulationConfig {
        seed: args.seed,
        space_size,
        target_responsive,
        loss_scale: args.loss,
    })))
}

/// Resolve the sender-shard count: `--senders` wins, then
/// `--threads`/`--shards`, then (for the full-space commands) all cores.
fn senders(args: &ScanArgs, auto_cores: bool) -> u32 {
    if args.senders > 0 {
        args.senders
    } else if args.threads > 0 {
        args.threads
    } else if auto_cores {
        std::thread::available_parallelism().map_or(4, |n| n.get() as u32)
    } else {
        1
    }
}

/// Map a resolved sender count (plus the optional explicit
/// `--receivers`) onto a driver topology: one sender runs on the
/// calling thread, more spread across real TX/RX threads.
fn scan_topology(senders: u32, receivers: u32) -> Topology {
    if senders <= 1 {
        Topology::Single
    } else {
        Topology::Threads {
            senders,
            receivers: if receivers > 0 { receivers } else { senders },
        }
    }
}

/// Wire the resilience flags into a scan config. Backoff intervals are
/// not exposed as flags: the §4 study values are already the defaults.
fn apply_resilience(config: &mut ScanConfig, args: &ScanArgs) {
    config.resilience.syn_retries = args.syn_retries;
    config.resilience.probe_retries = args.probe_retries;
    if args.watchdog_secs > 0 {
        config.resilience.session_deadline =
            Some(iw_netsim::Duration::from_secs(args.watchdog_secs));
    }
    config.resilience.max_sessions = args.max_sessions;
    config.stateless_first = args.stateless_first;
}

/// Wire the scan-style telemetry flags into a scan config.
fn apply_telemetry(config: &mut ScanConfig, args: &ScanArgs) {
    config.record_trace = args.pcap.is_some();
    // The snapshot file includes the event-log summary and RTT histogram,
    // so --metrics-out turns both recorders on.
    config.telemetry.record_events = args.metrics_out.is_some();
    config.telemetry.record_rtt = args.metrics_out.is_some();
    if args.monitor {
        config.telemetry.monitor = Some(MonitorSpec {
            interval: iw_netsim::Duration::from_millis(250),
            sink: MonitorSink::Stdout,
        });
    }
    config.telemetry.record_spans = args.trace_out.is_some();
    config.telemetry.flight_recorder = args.flight_out.is_some();
    if args.stream_out.is_some() {
        config.telemetry.stream = Some(iw_netsim::Duration::from_secs(1));
    }
}

/// CLI-level campaign context persisted in the checkpoint's `extra`
/// section: knobs that shape the synthetic world but live outside
/// `ScanConfig` (and thus outside the driver's config digest).
fn campaign_extra(args: &ScanArgs, command: &str) -> Vec<(String, String)> {
    vec![
        ("command".to_string(), command.to_string()),
        ("scale".to_string(), args.scale.clone()),
        ("loss_bits".to_string(), args.loss.to_bits().to_string()),
    ]
}

/// Serializes checkpoint captures from the shard threads into one
/// atomically refreshed campaign file: the file on disk is always a
/// complete, parseable checkpoint holding each shard's latest capture.
struct CheckpointWriter {
    path: String,
    header: CampaignCheckpoint,
    slots: Mutex<Vec<Option<ShardCheckpoint>>>,
}

impl CheckpointWriter {
    fn note(&self, shard: u32, capture: &ShardCheckpoint) {
        let Ok(mut slots) = self.slots.lock() else {
            return; // a shard panicked mid-write; nothing to persist
        };
        let Some(slot) = slots.get_mut(shard as usize) else {
            return;
        };
        *slot = Some(capture.clone());
        let mut file = self.header.clone();
        file.shards = slots.iter().flatten().cloned().collect();
        // Write while holding the lock so concurrent shard captures
        // cannot interleave their rename steps.
        let _ = output::write_atomic(&self.path, file.to_canonical_json());
    }
}

/// Wire the durable-campaign flags into a [`RunControl`], resolving
/// `--resume` against the checkpoint file. Returns the control block and
/// the shard count to run with (a resumed campaign inherits the shard
/// count and checkpoint interval it was started with).
fn durable_setup(
    args: &ScanArgs,
    command: &str,
    config: &ScanConfig,
    default_shards: u32,
) -> Result<(RunControl, u32), CmdError> {
    let mut control = RunControl {
        kill_after_events: args.kill_after_events,
        ..RunControl::default()
    };
    if args.abort_after_secs > 0 {
        control.abort_at = Some(iw_netsim::Duration::from_secs(args.abort_after_secs));
    }
    let mut shards = default_shards;
    let mut every_nanos: u64 = 0;
    if args.checkpoint_out.is_some() {
        every_nanos = args.checkpoint_every_secs.saturating_mul(1_000_000_000);
    }
    let extra = campaign_extra(args, command);
    if let Some(path) = &args.resume {
        let text = std::fs::read_to_string(path).map_err(|e| err(format!("read {path}: {e}")))?;
        let ckpt = CampaignCheckpoint::parse(&text).map_err(|e| err(format!("{path}: {e}")))?;
        let mut recorded = ckpt.extra.clone();
        recorded.sort();
        let mut expected = extra.clone();
        expected.sort();
        if recorded != expected {
            return Err(err(format!(
                "{path}: campaign context differs — checkpoint {recorded:?}, current \
                 {expected:?}; rerun with the original command, scale and loss"
            )));
        }
        shards = ckpt.threads.max(1);
        every_nanos = ckpt.checkpoint_every_nanos;
        control.resume = Some(Arc::new(ckpt));
    }
    if every_nanos > 0 {
        control.checkpoint_every = Some(iw_netsim::Duration::from_nanos(every_nanos));
    }
    if let Some(out_path) = &args.checkpoint_out {
        let writer = Arc::new(CheckpointWriter {
            path: out_path.clone(),
            header: CampaignCheckpoint {
                version: CHECKPOINT_VERSION,
                threads: shards,
                checkpoint_every_nanos: every_nanos,
                config: ConfigDigest::from_config(config),
                extra,
                shards: Vec::new(),
            },
            slots: Mutex::new(vec![None; shards as usize]),
        });
        control.on_checkpoint = Some(Arc::new(move |shard, capture| writer.note(shard, capture)));
    }
    Ok((control, shards))
}

/// Exit status for a killed campaign (mirrors `128+SIGKILL` convention).
const EXIT_KILLED: i32 = 9;
/// Exit status for a gracefully aborted campaign.
const EXIT_ABORTED: i32 = 3;

/// Write the telemetry products requested by `--metrics-out` / `--pcap`.
fn write_telemetry(out: &iw_core::ScanOutput, args: &ScanArgs) -> Result<(), CmdError> {
    if let Some(path) = &args.metrics_out {
        let json = format!(
            "{{\"metrics\":{},\"events\":{},\"icmp_harvest\":{}}}",
            out.telemetry.metrics.to_json(),
            out.telemetry.events.summary_json(),
            out.telemetry.icmp.section_json()
        );
        output::write_atomic(path, json).map_err(|e| err(format!("write {path}: {e}")))?;
        println!("telemetry snapshot written to {path}");
    }
    if let Some(path) = &args.pcap {
        // The pcap exporter writes the file itself, so stage it at the
        // temp path and promote it once complete.
        iw_netsim::pcap::save_pcap(&out.trace, std::path::Path::new(&output::tmp_path(path)))
            .map_err(|e| err(format!("write {path}: {e}")))?;
        output::commit_tmp(path).map_err(|e| err(format!("write {path}: {e}")))?;
        println!("scan trace saved to {path} ({} packets)", out.trace.len());
    }
    if let Some(path) = &args.trace_out {
        output::write_atomic(path, out.telemetry.tracer.to_chrome_json())
            .map_err(|e| err(format!("write {path}: {e}")))?;
        println!(
            "span trace written to {path} ({} spans; load in ui.perfetto.dev)",
            out.telemetry.tracer.scan_span_count()
        );
    }
    if let Some(path) = &args.stream_out {
        output::write_atomic(path, out.telemetry.stream.to_jsonl())
            .map_err(|e| err(format!("write {path}: {e}")))?;
        println!(
            "telemetry stream written to {path} ({} records)",
            out.telemetry.stream.len()
        );
    }
    if let Some(path) = &args.flight_out {
        output::write_atomic(path, out.telemetry.flight.to_jsonl())
            .map_err(|e| err(format!("write {path}: {e}")))?;
        println!(
            "flight-recorder dumps written to {path} ({} failed sessions)",
            out.telemetry.flight.dumps().len()
        );
    }
    Ok(())
}

fn report(out: &iw_core::ScanOutput, args: &ScanArgs, label: &str) -> Result<(), CmdError> {
    println!(
        "{}",
        Table1::new(&[(label, &out.summary)]).render().trim_end()
    );
    if !args.quiet {
        let hist = IwHistogram::from_results(&out.results);
        println!();
        print!("{}", render_iw_bars(label, &hist, 0.001, false));
    }
    if let Some(path) = &args.json {
        let json = serde_json::to_string_pretty(&out.results)
            .map_err(|e| err(format!("serialize: {e}")))?;
        output::write_atomic(path, json).map_err(|e| err(format!("write {path}: {e}")))?;
        println!("\nper-host results written to {path}");
    }
    write_telemetry(out, args)?;
    Ok(())
}

/// Resolve a finished run's disposition into an exit code, writing the
/// report/artifacts only when the outputs are trustworthy. `report` runs
/// for completed and (with a note) gracefully aborted campaigns; a killed
/// campaign leaves nothing but the persisted checkpoint behind, and a
/// diverged resume is a hard error.
fn conclude(
    out: &iw_core::ScanOutput,
    args: &ScanArgs,
    render: impl FnOnce(&iw_core::ScanOutput, &ScanArgs) -> Result<(), CmdError>,
) -> Result<i32, CmdError> {
    match &out.disposition {
        RunDisposition::Diverged { detail } => Err(err(format!("resume failed: {detail}"))),
        RunDisposition::Killed { events } => {
            let note = if args.checkpoint_out.is_some() {
                "; latest checkpoint persisted"
            } else {
                " (no --checkpoint-out: nothing persisted)"
            };
            println!("campaign killed after {events} events{note}");
            Ok(EXIT_KILLED)
        }
        RunDisposition::Aborted => {
            render(out, args)?;
            println!(
                "\ncampaign aborted at the shutdown deadline; sessions drained, artifacts flushed"
            );
            Ok(EXIT_ABORTED)
        }
        RunDisposition::Completed => {
            render(out, args)?;
            Ok(0)
        }
    }
}

fn cmd_scan(args: &ScanArgs) -> Result<i32, CmdError> {
    let protocol = parse_protocol(&args.protocol)?;
    let population = build_population(args)?;
    let mut config = ScanConfig::study(protocol, population.space_size(), args.seed);
    config.sample_fraction = args.sample;
    config.rate_pps = 4_000_000;
    apply_resilience(&mut config, args);
    apply_telemetry(&mut config, args);
    let (control, shards) = durable_setup(args, "scan", &config, senders(args, true))?;
    let out = ScanRunner::new(&population)
        .config(config)
        .topology(scan_topology(shards, args.receivers))
        .control(control)
        .run();
    let label = args.protocol.to_uppercase();
    conclude(&out, args, |out, args| report(out, args, &label))
}

fn cmd_alexa(args: &ScanArgs) -> Result<i32, CmdError> {
    let protocol = parse_protocol(&args.protocol)?;
    let population = build_population(args)?;
    let list = alexa::build(&population, args.n, 1);
    let targets: Vec<(u32, Option<String>)> =
        list.into_iter().map(|e| (e.ip, Some(e.domain))).collect();
    let mut config = ScanConfig::study(protocol, population.space_size(), args.seed);
    config.targets = TargetSpec::List(targets);
    config.rate_pps = 4_000_000;
    apply_resilience(&mut config, args);
    apply_telemetry(&mut config, args);
    // Lists default to one shard (they are small); explicit flags
    // still fan the round-robin partitions across threads.
    let (control, shards) = durable_setup(args, "alexa", &config, senders(args, false))?;
    let out = ScanRunner::new(&population)
        .config(config)
        .topology(scan_topology(shards, args.receivers))
        .control(control)
        .run();
    conclude(&out, args, |out, args| report(out, args, "ALEXA"))
}

fn cmd_mtu(args: &ScanArgs) -> Result<i32, CmdError> {
    let population = build_population(args)?;
    let mut config = ScanConfig::study(Protocol::IcmpMtu, population.space_size(), args.seed);
    config.sample_fraction = args.sample;
    config.rate_pps = 4_000_000;
    apply_resilience(&mut config, args);
    apply_telemetry(&mut config, args);
    let (control, shards) = durable_setup(args, "mtu", &config, senders(args, true))?;
    let out = ScanRunner::new(&population)
        .config(config)
        .topology(scan_topology(shards, args.receivers))
        .control(control)
        .run();
    conclude(&out, args, |out, args| {
        write_telemetry(out, args)?;
        let n = out.mtu_results.len().max(1) as f64;
        println!("hosts answering ICMP: {}", out.mtu_results.len());
        for mss in [536u32, 1240, 1336, 1436, 1460] {
            let share =
                out.mtu_results.iter().filter(|r| r.mtu >= mss + 40).count() as f64 / n * 100.0;
            println!("  MSS {mss:>5} supported by {share:>5.1}%");
        }
        Ok(())
    })
}

fn cmd_probe(args: &ProbeArgs) -> Result<i32, CmdError> {
    let protocol = match args.protocol.as_str() {
        "http" => Protocol::Http,
        "tls" => Protocol::Tls,
        other => return Err(err(format!("probe supports http|tls, not '{other}'"))),
    };
    let os = match args.os.as_str() {
        "linux" => OsProfile::linux(),
        "windows" => OsProfile::windows(),
        "embedded" => OsProfile::embedded(),
        "bsd" => OsProfile::bsd(),
        other => return Err(err(format!("unknown os '{other}'"))),
    };
    let iw = match args.policy.as_str() {
        "segments" => IwPolicy::Segments(args.iw),
        "bytes" => IwPolicy::Bytes(args.iw),
        "mtufill" => IwPolicy::MtuFill(args.iw),
        "rfc6928" => IwPolicy::Rfc6928,
        other => return Err(err(format!("unknown policy '{other}'"))),
    };
    let host = HostConfig {
        os,
        iw,
        http: Some(HttpConfig {
            behavior: HttpBehavior::Direct {
                root_size: args.body,
                echo_404: false,
            },
            server_header: "iwscan-testbed".into(),
            vhost_iw: Vec::new(),
        }),
        tls: Some(iw_hoststack::TlsConfig {
            behavior: iw_hoststack::TlsBehavior::Serve,
            cipher: iw_wire::tls::CipherSuite::ECDHE_RSA_AES128_GCM,
            cert_lens: vec![(args.body / 2).max(36), (args.body / 2).max(36)],
            ocsp_len: Some(471),
            sni_iw: Vec::new(),
        }),
        path_mtu: 1500,
        icmp: true,
    };
    let mut spec = TestbedSpec::new(host, protocol);
    spec.seed = args.seed;
    spec.record_trace = args.pcap.is_some();
    if args.loss > 0.0 {
        spec.link = LinkConfig::testbed().with_loss(args.loss);
    }
    let (result, trace) = probe_host(&spec);
    match result {
        Some(result) => {
            for (mss, outcomes) in &result.runs {
                for (i, o) in outcomes.iter().enumerate() {
                    println!("MSS {mss:>3} probe {}: {o:?}", i + 1);
                }
            }
            println!("\nverdict: {:?}", result.host_verdict);
        }
        None => println!("host did not answer"),
    }
    if let Some(path) = &args.pcap {
        iw_netsim::pcap::save_pcap(&trace, std::path::Path::new(path))
            .map_err(|e| err(format!("write {path}: {e}")))?;
        println!("packet trace saved to {path} ({} packets)", trace.len());
    }
    Ok(0)
}

/// Pull the string value of `"key":"value"` out of a JSON line. The
/// telemetry writers never emit escaped quotes inside these fields
/// (names, verdicts, dotted quads), so a plain scan suffices.
fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Pull the numeric value of `"key":123.4` out of a JSON line.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Render a `label count` breakdown, largest first, capped at `top` rows.
fn render_breakdown(title: &str, tallies: &std::collections::BTreeMap<String, u64>, top: usize) {
    if tallies.is_empty() {
        return;
    }
    let mut rows: Vec<(&String, &u64)> = tallies.iter().collect();
    rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("{title}:");
    for (label, count) in rows.into_iter().take(top) {
        println!("  {label:<28} {count}");
    }
}

/// Summarize a Chrome trace-event file: span count and per-name totals.
fn inspect_trace(content: &str, filter: Option<&str>, top: usize) {
    let mut by_name: std::collections::BTreeMap<String, u64> = Default::default();
    let mut by_name_ms: std::collections::BTreeMap<String, f64> = Default::default();
    let mut spans = 0u64;
    // Split-on-brace fragments: each complete "X" event contributes one
    // fragment holding its name/dur pair (nested args land in the next).
    for chunk in content.split('{').filter(|c| c.contains("\"ph\":\"X\"")) {
        let Some(name) = json_str_field(chunk, "name") else {
            continue;
        };
        if filter.is_some_and(|f| !name.contains(f)) {
            continue;
        }
        spans += 1;
        *by_name.entry(name.to_string()).or_default() += 1;
        *by_name_ms.entry(name.to_string()).or_default() +=
            json_num_field(chunk, "dur").unwrap_or(0.0) / 1_000.0;
    }
    println!("chrome trace: {spans} spans");
    let mut rows: Vec<(&String, &u64)> = by_name.iter().collect();
    rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    for (name, count) in rows.into_iter().take(top) {
        println!("  {name:<28} {count:>8}  {:>12.3} ms", by_name_ms[name]);
    }
}

/// Summarize a JSONL telemetry file (stream records or flight dumps).
fn inspect_jsonl(content: &str, filter: Option<&str>, top: usize) {
    let mut snapshots = 0u64;
    let mut results: std::collections::BTreeMap<String, u64> = Default::default();
    let mut flights: std::collections::BTreeMap<String, u64> = Default::default();
    let mut phases: std::collections::BTreeMap<String, u64> = Default::default();
    let mut other = 0u64;
    let mut total = 0u64;
    for line in content.lines().filter(|l| !l.trim().is_empty()) {
        if filter.is_some_and(|f| !line.contains(f)) {
            continue;
        }
        total += 1;
        match json_str_field(line, "type") {
            Some("snapshot") => snapshots += 1,
            Some("result") => {
                let verdict = json_str_field(line, "verdict").unwrap_or("unknown");
                *results.entry(verdict.to_string()).or_default() += 1;
            }
            _ if line.contains("\"entries\":") => {
                let error = json_str_field(line, "error").unwrap_or("unknown");
                let phase = json_str_field(line, "phase").unwrap_or("unknown");
                *flights.entry(error.to_string()).or_default() += 1;
                *phases.entry(phase.to_string()).or_default() += 1;
            }
            _ => other += 1,
        }
    }
    let result_count: u64 = results.values().sum();
    let flight_count: u64 = flights.values().sum();
    println!(
        "{total} records ({snapshots} snapshots, {result_count} results, \
         {flight_count} flight dumps, {other} other)"
    );
    render_breakdown("results by verdict", &results, top);
    render_breakdown("flight dumps by error", &flights, top);
    render_breakdown("flight dumps by phase", &phases, top);
}

fn cmd_inspect(args: &InspectArgs) -> Result<i32, CmdError> {
    let content =
        std::fs::read_to_string(&args.file).map_err(|e| err(format!("read {}: {e}", args.file)))?;
    let top = args.top.max(1);
    if content.trim_start().starts_with('{') && content.contains("\"traceEvents\"") {
        inspect_trace(&content, args.filter.as_deref(), top);
    } else {
        inspect_jsonl(&content, args.filter.as_deref(), top);
    }
    Ok(0)
}

/// Dispatch a parsed CLI to its implementation.
pub fn dispatch(cli: &Cli) -> Result<i32, CmdError> {
    match &cli.command {
        Command::Scan(args) => cmd_scan(args),
        Command::Alexa(args) => cmd_alexa(args),
        Command::Mtu(args) => cmd_mtu(args),
        Command::Probe(args) => cmd_probe(args),
        Command::Inspect(args) => cmd_inspect(args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_and_scale_parsing() {
        assert_eq!(parse_protocol("http").unwrap(), Protocol::Http);
        assert_eq!(parse_protocol("tls").unwrap(), Protocol::Tls);
        assert!(parse_protocol("gopher").is_err());
        assert!(world_dimensions("small").is_ok());
        assert!(world_dimensions("galactic").is_err());
    }

    #[test]
    fn topology_mapping_from_flags() {
        // One sender stays on the calling thread: the golden baseline
        // (`--threads 1`) must keep its exact single-shard shape.
        assert_eq!(scan_topology(0, 0), Topology::Single);
        assert_eq!(scan_topology(1, 0), Topology::Single);
        assert_eq!(scan_topology(1, 4), Topology::Single);
        assert_eq!(
            scan_topology(4, 0),
            Topology::Threads {
                senders: 4,
                receivers: 4
            }
        );
        assert_eq!(
            scan_topology(4, 2),
            Topology::Threads {
                senders: 4,
                receivers: 2
            }
        );
        // --senders beats --threads; lists only auto-shard when asked.
        let args = ScanArgs {
            threads: 8,
            senders: 3,
            ..ScanArgs::default()
        };
        assert_eq!(senders(&args, true), 3);
        let args = ScanArgs {
            threads: 8,
            ..ScanArgs::default()
        };
        assert_eq!(senders(&args, false), 8);
        assert_eq!(senders(&ScanArgs::default(), false), 1);
    }

    #[test]
    fn resilience_flags_reach_the_config() {
        let args = ScanArgs {
            syn_retries: 2,
            probe_retries: 1,
            watchdog_secs: 75,
            max_sessions: 4096,
            ..ScanArgs::default()
        };
        let mut config = ScanConfig::study(Protocol::Http, 1 << 10, 1);
        apply_resilience(&mut config, &args);
        assert_eq!(config.resilience.syn_retries, 2);
        assert_eq!(config.resilience.probe_retries, 1);
        assert_eq!(
            config.resilience.session_deadline,
            Some(iw_netsim::Duration::from_secs(75))
        );
        assert_eq!(config.resilience.max_sessions, 4096);
        // Default args leave the baseline untouched.
        let mut config = ScanConfig::study(Protocol::Http, 1 << 10, 1);
        apply_resilience(&mut config, &ScanArgs::default());
        assert_eq!(config.resilience, Default::default());
    }

    #[test]
    fn probe_command_end_to_end() {
        let args = ProbeArgs {
            iw: 4,
            ..ProbeArgs::default()
        };
        assert_eq!(cmd_probe(&args).unwrap(), 0);
    }

    #[test]
    fn probe_rejects_bad_enum_values() {
        let args = ProbeArgs {
            os: "temple".into(),
            ..ProbeArgs::default()
        };
        assert!(cmd_probe(&args).is_err());
        let args = ProbeArgs {
            policy: "vibes".into(),
            ..ProbeArgs::default()
        };
        assert!(cmd_probe(&args).is_err());
    }

    #[test]
    fn telemetry_files_are_written() {
        let out = iw_core::ScanOutput {
            results: vec![],
            open_ports: vec![],
            mtu_results: vec![],
            summary: Default::default(),
            sim_stats: Default::default(),
            duration: iw_netsim::Duration::ZERO,
            telemetry: Default::default(),
            trace: Default::default(),
            checkpoints: vec![],
            disposition: RunDisposition::Completed,
        };
        let dir = std::env::temp_dir().join("iwscan-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics_path = dir.join("metrics.json");
        let pcap_path = dir.join("scan.pcap");
        let trace_path = dir.join("trace.json");
        let stream_path = dir.join("stream.jsonl");
        let flight_path = dir.join("flight.jsonl");
        let args = ScanArgs {
            metrics_out: Some(metrics_path.to_string_lossy().into_owned()),
            pcap: Some(pcap_path.to_string_lossy().into_owned()),
            trace_out: Some(trace_path.to_string_lossy().into_owned()),
            stream_out: Some(stream_path.to_string_lossy().into_owned()),
            flight_out: Some(flight_path.to_string_lossy().into_owned()),
            ..ScanArgs::default()
        };
        write_telemetry(&out, &args).unwrap();
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.starts_with("{\"metrics\":{\"scan\":"), "{metrics}");
        assert!(metrics.contains("\"events\":{"), "{metrics}");
        assert!(metrics.contains("\"icmp_harvest\":{"), "{metrics}");
        assert!(
            std::fs::read(&pcap_path).unwrap().len() >= 24,
            "pcap header"
        );
        // An empty tracer still writes a loadable trace skeleton; the
        // empty JSONL sinks write empty files.
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert_eq!(std::fs::read_to_string(&stream_path).unwrap(), "");
        assert_eq!(std::fs::read_to_string(&flight_path).unwrap(), "");
        for p in [
            &metrics_path,
            &pcap_path,
            &trace_path,
            &stream_path,
            &flight_path,
        ] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn durable_setup_wires_control_and_checks_context() {
        let dir = std::env::temp_dir().join("iwscan-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let config = ScanConfig::study(Protocol::Http, 1 << 10, 1);

        // No durable flags: inert control, caller's shard count.
        let (control, shards) = durable_setup(&ScanArgs::default(), "scan", &config, 2).unwrap();
        assert_eq!(shards, 2);
        assert!(control.resume.is_none());
        assert!(control.on_checkpoint.is_none());
        assert_eq!(control.checkpoint_every, None);

        // --checkpoint-out turns on the periodic writer.
        let out_path = dir.join("campaign.ckpt").to_string_lossy().into_owned();
        let args = ScanArgs {
            checkpoint_out: Some(out_path.clone()),
            checkpoint_every_secs: 5,
            ..ScanArgs::default()
        };
        let (control, _) = durable_setup(&args, "scan", &config, 2).unwrap();
        assert!(control.on_checkpoint.is_some());
        assert_eq!(
            control.checkpoint_every,
            Some(iw_netsim::Duration::from_secs(5))
        );
        // Drive the writer: the file must be a parseable campaign file
        // holding the latest capture per shard.
        let cb = control.on_checkpoint.as_ref().unwrap();
        cb(
            1,
            &ShardCheckpoint {
                shard: 1,
                events: 10,
                ..Default::default()
            },
        );
        cb(
            0,
            &ShardCheckpoint {
                shard: 0,
                events: 7,
                ..Default::default()
            },
        );
        cb(
            0,
            &ShardCheckpoint {
                shard: 0,
                events: 9,
                ..Default::default()
            },
        );
        let file = CampaignCheckpoint::parse(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(file.shards.len(), 2);
        assert_eq!(file.shard(0).unwrap().events, 9);
        assert_eq!(file.shard(1).unwrap().events, 10);

        // Resume rejects a checkpoint from a different world (scale).
        let resume_path = dir.join("foreign.ckpt").to_string_lossy().into_owned();
        let foreign = CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            threads: 3,
            checkpoint_every_nanos: 0,
            config: ConfigDigest::from_config(&config),
            extra: campaign_extra(
                &ScanArgs {
                    scale: "medium".into(),
                    ..ScanArgs::default()
                },
                "scan",
            ),
            shards: vec![],
        };
        std::fs::write(&resume_path, foreign.to_canonical_json()).unwrap();
        let args = ScanArgs {
            resume: Some(resume_path.clone()),
            ..ScanArgs::default()
        };
        let msg = match durable_setup(&args, "scan", &config, 2) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("foreign-scale checkpoint accepted"),
        };
        assert!(msg.contains("campaign context differs"), "{msg}");

        // …and a checkpoint from another command.
        let other = CampaignCheckpoint {
            extra: campaign_extra(&ScanArgs::default(), "mtu"),
            ..foreign.clone()
        };
        std::fs::write(&resume_path, other.to_canonical_json()).unwrap();
        assert!(durable_setup(&args, "scan", &config, 2).is_err());

        // A matching checkpoint resumes, inheriting its shard count.
        let matching = CampaignCheckpoint {
            extra: campaign_extra(&ScanArgs::default(), "scan"),
            checkpoint_every_nanos: 2_000_000_000,
            ..foreign
        };
        std::fs::write(&resume_path, matching.to_canonical_json()).unwrap();
        let (control, shards) = durable_setup(&args, "scan", &config, 8).unwrap();
        assert_eq!(shards, 3, "resume inherits the recorded shard count");
        assert!(control.resume.is_some());
        assert_eq!(
            control.checkpoint_every,
            Some(iw_netsim::Duration::from_secs(2)),
            "resume inherits the recorded capture cadence"
        );

        // Corrupted checkpoint bytes surface as a clean error.
        std::fs::write(&resume_path, "{\"kind\":\"iwscan-campaign-checkpoint\",").unwrap();
        assert!(durable_setup(&args, "scan", &config, 2).is_err());
        let _ = std::fs::remove_file(&out_path);
        let _ = std::fs::remove_file(&resume_path);
    }

    #[test]
    fn json_field_extraction() {
        let line =
            "{\"type\":\"result\",\"at_nanos\":7000,\"ip\":\"10.0.0.1\",\"verdict\":\"few_data\"}";
        assert_eq!(json_str_field(line, "type"), Some("result"));
        assert_eq!(json_str_field(line, "verdict"), Some("few_data"));
        assert_eq!(json_str_field(line, "missing"), None);
        assert_eq!(json_num_field(line, "at_nanos"), Some(7000.0));
        assert_eq!(json_num_field("{\"dur\":12.345}", "dur"), Some(12.345));
        assert_eq!(json_num_field(line, "missing"), None);
    }

    #[test]
    fn inspect_summarizes_jsonl_and_trace_files() {
        let dir = std::env::temp_dir().join("iwscan-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("inspect.jsonl");
        std::fs::write(
            &jsonl,
            "{\"type\":\"snapshot\",\"at_nanos\":0,\"shard\":0,\"delta\":{}}\n\
             {\"type\":\"result\",\"at_nanos\":1,\"ip\":\"10.0.0.1\",\"verdict\":\"success\"}\n\
             {\"at_nanos\":2,\"ip\":\"10.0.0.2\",\"error\":\"handshake_timeout\",\
              \"phase\":\"syn_sent\",\"evicted\":0,\"entries\":[]}\n",
        )
        .unwrap();
        let args = InspectArgs {
            file: jsonl.to_string_lossy().into_owned(),
            filter: None,
            top: 10,
        };
        assert_eq!(cmd_inspect(&args).unwrap(), 0);
        // Filtering keeps the summary path alive with zero matches.
        let args = InspectArgs {
            filter: Some("no-such-substring".into()),
            ..args
        };
        assert_eq!(cmd_inspect(&args).unwrap(), 0);

        let trace = dir.join("inspect-trace.json");
        std::fs::write(
            &trace,
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
             {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"scan\"}},\
             {\"name\":\"handshake\",\"cat\":\"scan\",\"ph\":\"X\",\"ts\":0,\"dur\":1.5,\
              \"pid\":1,\"tid\":1,\"args\":{\"arg\":0}}]}",
        )
        .unwrap();
        let args = InspectArgs {
            file: trace.to_string_lossy().into_owned(),
            filter: None,
            top: 10,
        };
        assert_eq!(cmd_inspect(&args).unwrap(), 0);
        let args = InspectArgs {
            file: "/nonexistent/iwscan".into(),
            filter: None,
            top: 10,
        };
        assert!(cmd_inspect(&args).is_err());
        let _ = std::fs::remove_file(&jsonl);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn probe_writes_pcap() {
        let dir = std::env::temp_dir().join("iwscan-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.pcap");
        let args = ProbeArgs {
            pcap: Some(path.to_string_lossy().into_owned()),
            ..ProbeArgs::default()
        };
        assert_eq!(cmd_probe(&args).unwrap(), 0);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[0..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert!(bytes.len() > 24, "records present");
        let _ = std::fs::remove_file(&path);
    }
}
