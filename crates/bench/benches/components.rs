//! Micro-benchmarks of the scanner's hot paths: address permutation,
//! wire emit/parse, cookie validation and the inference state machine.
//! These bound the real-world packet rate the ZMap module could sustain.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use iw_core::cookie::CookieKey;
use iw_core::inference::{ConnConfig, InferenceConn};
use iw_core::permutation::Permutation;
use iw_netsim::Instant;
use iw_wire::ipv4::Ipv4Addr;
use iw_wire::tcp::{self, Flags, TcpOption};

fn bench_permutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("permutation");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("iterate_100k_targets", |b| {
        let perm = Permutation::new(1 << 32, 7);
        b.iter(|| {
            let mut iter = perm.iter();
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc ^= iter.next().unwrap();
            }
            black_box(acc)
        });
    });
    group.bench_function("construct_full_ipv4", |b| {
        b.iter(|| black_box(Permutation::new(1 << 32, black_box(9))));
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let src = Ipv4Addr::new(198, 18, 0, 1);
    let dst = Ipv4Addr::new(10, 1, 2, 3);
    let syn = tcp::Repr {
        src_port: 40000,
        dst_port: 80,
        seq: 12345,
        ack: 0,
        flags: Flags::SYN,
        window: 65535,
        options: vec![TcpOption::Mss(64)],
        payload: Vec::new(),
    };
    let mut group = c.benchmark_group("wire");
    group.throughput(Throughput::Elements(1));
    group.bench_function("emit_syn_segment", |b| {
        b.iter(|| black_box(syn.emit(src, dst)));
    });
    let data_seg = tcp::Repr {
        flags: Flags::ACK | Flags::PSH,
        payload: vec![0xaa; 64],
        options: vec![],
        ..syn.clone()
    };
    let bytes = data_seg.emit(src, dst);
    group.bench_function("parse_data_segment", |b| {
        b.iter(|| {
            let packet = tcp::Packet::new_checked(&bytes[..]).unwrap();
            black_box(tcp::Repr::parse(&packet, src, dst).unwrap())
        });
    });
    group.finish();
}

fn bench_cookie(c: &mut Criterion) {
    let key = CookieKey::new(42);
    let mut group = c.benchmark_group("cookie");
    group.throughput(Throughput::Elements(1));
    group.bench_function("isn_derivation", |b| {
        let mut ip = 0u32;
        b.iter(|| {
            ip = ip.wrapping_add(1);
            black_box(key.isn(ip, 40000, 80))
        });
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let src = Ipv4Addr::new(198, 18, 0, 1);
    let dst = Ipv4Addr::new(10, 1, 2, 3);
    let mut group = c.benchmark_group("inference");
    group.throughput(Throughput::Elements(1));
    group.bench_function("full_iw10_connection", |b| {
        b.iter(|| {
            let cfg = ConnConfig::new(
                dst,
                src,
                40000,
                80,
                64,
                1000,
                b"GET / HTTP/1.1\r\n\r\n".to_vec(),
            );
            let (mut conn, _) = InferenceConn::new(cfg, Instant::ZERO);
            let synack = tcp::Repr {
                src_port: 80,
                dst_port: 40000,
                seq: 5000,
                ack: 1001,
                flags: Flags::SYN | Flags::ACK,
                window: 65535,
                options: vec![TcpOption::Mss(64)],
                payload: vec![],
            };
            conn.on_segment(&synack, Instant::ZERO);
            for i in 0..10u32 {
                let seg = tcp::Repr {
                    src_port: 80,
                    dst_port: 40000,
                    seq: 5001 + i * 64,
                    ack: 1019,
                    flags: Flags::ACK,
                    window: 65535,
                    options: vec![],
                    payload: vec![0xaa; 64],
                };
                conn.on_segment(&seg, Instant::ZERO);
            }
            // Retransmission + released data.
            let rtx = tcp::Repr {
                src_port: 80,
                dst_port: 40000,
                seq: 5001,
                ack: 1019,
                flags: Flags::ACK,
                window: 65535,
                options: vec![],
                payload: vec![0xaa; 64],
            };
            conn.on_segment(&rtx, Instant::ZERO);
            let new = tcp::Repr {
                src_port: 80,
                dst_port: 40000,
                seq: 5001 + 640,
                ack: 1019,
                flags: Flags::ACK,
                window: 65535,
                options: vec![],
                payload: vec![0xaa; 64],
            };
            black_box(conn.on_segment(&new, Instant::ZERO).result)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_permutation,
    bench_wire,
    bench_cookie,
    bench_inference
);
criterion_main!(benches);
