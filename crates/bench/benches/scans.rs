//! One bench per table/figure regenerator: how long each experiment's
//! pipeline takes end-to-end on a tiny world. These are the "can I
//! iterate on this quickly" numbers for downstream users.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use iw_analysis::ccdf::Ccdf;
use iw_analysis::dbscan::{dbscan, summarize, AsPoint};
use iw_analysis::histogram::IwHistogram;
use iw_analysis::sampling::repeated_sample_stats;
use iw_analysis::tables::{Table1, Table2, Table3};
use iw_core::{Protocol, ResilienceConfig, ScanConfig, ScanOutput, ScanRunner, TargetSpec};
use iw_internet::{alexa, certs, Population, PopulationConfig};
use std::collections::HashMap;
use std::sync::Arc;

fn bench_world() -> Arc<Population> {
    Arc::new(Population::new(PopulationConfig {
        seed: 99,
        space_size: 1 << 14,
        target_responsive: 350,
        loss_scale: 0.0,
    }))
}

fn scan(pop: &Arc<Population>, protocol: Protocol) -> ScanOutput {
    let mut config = ScanConfig::study(protocol, pop.space_size(), 99);
    config.rate_pps = 4_000_000;
    ScanRunner::new(pop).config(config).run()
}

fn bench_scans(c: &mut Criterion) {
    let pop = bench_world();
    let mut group = c.benchmark_group("scan");
    group.sample_size(10);
    group.bench_function("table1_http_full_scan", |b| {
        b.iter(|| black_box(scan(&pop, Protocol::Http).summary));
    });
    group.bench_function("table1_tls_full_scan", |b| {
        b.iter(|| black_box(scan(&pop, Protocol::Tls).summary));
    });
    group.bench_function("s34_port_scan_baseline", |b| {
        b.iter(|| black_box(scan(&pop, Protocol::PortScan).open_ports.len()));
    });
    group.bench_function("fn1_icmp_mtu_scan", |b| {
        b.iter(|| black_box(scan(&pop, Protocol::IcmpMtu).mtu_results.len()));
    });
    group.bench_function("resilient_http_scan_2pct_loss", |b| {
        // The hardened profile on an impaired world: what the retry /
        // watchdog machinery costs when it actually has work to do.
        let lossy = Arc::new(Population::new(PopulationConfig {
            seed: 99,
            space_size: 1 << 14,
            target_responsive: 350,
            loss_scale: 2.0,
        }));
        b.iter(|| {
            let mut config = ScanConfig::study(Protocol::Http, lossy.space_size(), 99);
            config.rate_pps = 4_000_000;
            config.resilience = ResilienceConfig::hardened();
            black_box(ScanRunner::new(&lossy).config(config).run().summary)
        });
    });
    group.bench_function("fig4_alexa_scan", |b| {
        let list = alexa::build(&pop, 100, 1);
        let targets: Vec<(u32, Option<String>)> =
            list.into_iter().map(|e| (e.ip, Some(e.domain))).collect();
        b.iter(|| {
            let mut config = ScanConfig::study(Protocol::Http, pop.space_size(), 99);
            config.targets = TargetSpec::List(targets.clone());
            config.rate_pps = 4_000_000;
            black_box(ScanRunner::new(&pop).config(config).run().summary)
        });
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let pop = bench_world();
    let http = scan(&pop, Protocol::Http);
    let tls = scan(&pop, Protocol::Tls);
    let mut group = c.benchmark_group("analysis");

    group.bench_function("table1_build", |b| {
        b.iter(|| {
            black_box(Table1::new(&[("HTTP", &http.summary), ("TLS", &tls.summary)]).render())
        })
    });
    group.bench_function("table2_build", |b| {
        b.iter(|| black_box(Table2::new(&http.results)));
    });
    group.bench_function("table3_classify_and_build", |b| {
        b.iter(|| black_box(Table3::new(&http.results, &pop)));
    });
    group.bench_function("fig2_ccdf_100k_chains", |b| {
        let samples = certs::censys_sample(1, 100_000);
        b.iter(|| {
            let ccdf = Ccdf::new(samples.clone());
            black_box((ccdf.at(640), ccdf.at(2176), ccdf.mean()))
        });
    });
    group.bench_function("fig3_histogram_and_sampling", |b| {
        b.iter(|| {
            let h = IwHistogram::from_results(&http.results);
            let stats = repeated_sample_stats(&http.results, 0.2, 10, 3);
            black_box((h.total(), stats.len()))
        });
    });
    group.bench_function("fig5_dbscan", |b| {
        let mut per_as: HashMap<u32, HashMap<u32, u64>> = HashMap::new();
        for r in &http.results {
            if let (Some(iw), Some(meta)) = (r.iw_estimate(), pop.meta(r.ip)) {
                *per_as.entry(meta.asn).or_default().entry(iw).or_insert(0) += 1;
            }
        }
        let points: Vec<AsPoint> = per_as
            .iter()
            .map(|(asn, c)| {
                AsPoint::from_counts(*asn, &c.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>())
            })
            .collect();
        b.iter(|| {
            let labels = dbscan(&points, 0.12, 5);
            black_box(summarize(&points, &labels).len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_scans, bench_analysis);
criterion_main!(benches);
