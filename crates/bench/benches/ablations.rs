//! Ablation benches for the design choices DESIGN.md stars:
//! the tiny advertised MSS, the 3-probe vote, and the exhaustion
//! verification. Criterion measures the runtime cost of each variant;
//! the *quality* impact of the same variants is reported by
//! `exp_ablations` (they share configurations).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iw_core::{Protocol, ScanConfig, ScanRunner};
use iw_internet::{Population, PopulationConfig};
use std::sync::Arc;

fn world(loss: f64) -> Arc<Population> {
    Arc::new(Population::new(PopulationConfig {
        seed: 55,
        space_size: 1 << 14,
        target_responsive: 350,
        loss_scale: loss,
    }))
}

fn bench_ablation_mss(c: &mut Criterion) {
    let pop = world(0.0);
    let mut group = c.benchmark_group("ablation_mss");
    group.sample_size(10);
    for mss in [64u16, 128, 256, 536, 1336] {
        group.bench_with_input(BenchmarkId::from_parameter(mss), &mss, |b, mss| {
            b.iter(|| {
                let mut config = ScanConfig::study(Protocol::Http, pop.space_size(), 55);
                config.mss_list = vec![*mss];
                config.rate_pps = 4_000_000;
                black_box(ScanRunner::new(&pop).config(config).run().summary)
            });
        });
    }
    group.finish();
}

fn bench_ablation_probes(c: &mut Criterion) {
    let pop = world(1.0);
    let mut group = c.benchmark_group("ablation_probes");
    group.sample_size(10);
    for probes in [1u32, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(probes), &probes, |b, probes| {
            b.iter(|| {
                let mut config = ScanConfig::study(Protocol::Http, pop.space_size(), 55);
                config.probes_per_mss = *probes;
                config.mss_list = vec![64];
                config.rate_pps = 4_000_000;
                black_box(ScanRunner::new(&pop).config(config).run().summary)
            });
        });
    }
    group.finish();
}

fn bench_ablation_verify(c: &mut Criterion) {
    let pop = world(0.0);
    let mut group = c.benchmark_group("ablation_verify");
    group.sample_size(10);
    for verify in [true, false] {
        group.bench_with_input(BenchmarkId::from_parameter(verify), &verify, |b, verify| {
            b.iter(|| {
                let mut config = ScanConfig::study(Protocol::Tls, pop.space_size(), 55);
                config.verify_exhaustion = *verify;
                config.rate_pps = 4_000_000;
                black_box(ScanRunner::new(&pop).config(config).run().summary)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ablation_mss,
    bench_ablation_probes,
    bench_ablation_verify
);
criterion_main!(benches);
