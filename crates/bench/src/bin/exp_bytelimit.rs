//! Experiment S42 — §4.2: hosts whose IW is a byte limit, detected by
//! the dual-MSS scan. Paper: ≈1 % of hosts adjust their IW to the MSS;
//! ≈50 % of those are the 4 kB group (Technicolor modems at Telmex,
//! power-supply monitors: 64 segments at MSS 64 → 32 at MSS 128); a
//! subgroup fills 1536 B (24 → 12); GoDaddy's IW48 fleet is static
//! (48 at both MSS values) — segment-configured despite its odd size.

use iw_bench::{banner, compare_line, full_scan, standard_population, Scale};
use iw_core::{HostVerdict, Protocol};
use iw_internet::registry::NetClass;
use std::collections::HashMap;

fn main() {
    let scale = Scale::from_env();
    banner(&format!(
        "§4.2: byte-limited initial windows ({scale:?} scale)"
    ));
    let population = standard_population(scale);
    let out = full_scan(&population, Protocol::Http);

    let mut byte_based: HashMap<u32, u64> = HashMap::new(); // bytes -> count
    let mut seg_based = 0u64;
    let mut classified = 0u64;
    let mut iw48_static = 0u64;
    let mut byte_class_count: HashMap<&'static str, u64> = HashMap::new();
    for r in &out.results {
        match r.host_verdict {
            HostVerdict::ByteBased(bytes) => {
                *byte_based.entry(bytes).or_insert(0) += 1;
                classified += 1;
                if let Some(meta) = population.meta(r.ip) {
                    let label = match meta.class {
                        NetClass::AccessModems => "modem fleet (Telmex-like)",
                        _ => "other networks",
                    };
                    *byte_class_count.entry(label).or_insert(0) += 1;
                }
            }
            HostVerdict::SegmentBased(iw) => {
                seg_based += 1;
                classified += 1;
                if iw == 48 {
                    iw48_static += 1;
                }
            }
            _ => {}
        }
    }

    let byte_total: u64 = byte_based.values().sum();
    println!("hosts with estimates at both MSS values: {classified}");
    println!("segment-configured: {seg_based}");
    println!("byte-configured:    {byte_total}");
    for (bytes, count) in {
        let mut v: Vec<_> = byte_based.iter().collect();
        v.sort();
        v
    } {
        println!(
            "  {bytes} B budget: {count} hosts ({} segs @64 / {} @128)",
            bytes / 64,
            bytes / 128
        );
    }
    println!("byte-configured by network:");
    for (label, count) in &byte_class_count {
        println!("  {label}: {count}");
    }
    println!("static IW48 hosts (GoDaddy-style, MSS-independent): {iw48_static}");

    println!("\npaper vs measured:");
    let frac = byte_total as f64 / classified.max(1) as f64 * 100.0;
    compare_line("byte-configured share of hosts", 1.0, frac, "%");
    let four_k = *byte_based.get(&4096).unwrap_or(&0) as f64;
    compare_line(
        "4 kB share of byte-configured",
        50.0,
        four_k / byte_total.max(1) as f64 * 100.0,
        "%",
    );

    let has_4k = byte_based.get(&4096).copied().unwrap_or(0) > 0;
    let has_1536 = byte_based.get(&1536).copied().unwrap_or(0) > 0;
    let sane_share = (0.2..=4.0).contains(&frac);
    let ok = has_4k && has_1536 && sane_share && iw48_static > 0;
    println!(
        "\n[{}] S42: 4kB group {}, 1536B group {}, share {:.1}%, IW48 fleet {}",
        if ok { "PASS" } else { "FAIL" },
        has_4k,
        has_1536,
        frac,
        iw48_static
    );
    std::process::exit(i32::from(!ok));
}
