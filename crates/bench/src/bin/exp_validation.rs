//! Experiment S35 — §3.5 validation: the controlled-testbed study.
//!
//! 1. Ground truth across OS (Linux/Windows/embedded/BSD) × IW policy ×
//!    data volume — with enough data the estimator must be exact.
//! 2. NetEM-style random loss: estimates stay correct in the absence of
//!    tail loss (multi-probe maximum voting).
//! 3. Exact scripted tail loss: a single probe underestimates by exactly
//!    the lost segment — the failure mode the paper documents — and
//!    three probes with independent loss recover the truth.

use iw_core::testbed::{probe_host, TestbedSpec};
use iw_core::{MssVerdict, Protocol};
use iw_hoststack::{HostConfig, HttpBehavior, HttpConfig, IwPolicy, OsProfile};
use iw_netsim::{Duration, LinkConfig};

fn host(os: OsProfile, iw: IwPolicy, body: u32) -> HostConfig {
    HostConfig {
        os,
        iw,
        http: Some(HttpConfig {
            behavior: HttpBehavior::Direct {
                root_size: body,
                echo_404: false,
            },
            server_header: "testbed".into(),
            vhost_iw: Vec::new(),
        }),
        tls: None,
        path_mtu: 1500,
        icmp: true,
    }
}

fn main() {
    iw_bench::banner("§3.5 validation: controlled testbed");
    let mut failures = 0u32;

    println!("experiment 1: ground truth, enough data, clean links");
    println!("  os        iw-policy        expected  measured  ok");
    for os in [
        OsProfile::linux(),
        OsProfile::windows(),
        OsProfile::embedded(),
        OsProfile::bsd(),
    ] {
        for iw in [
            IwPolicy::Segments(1),
            IwPolicy::Segments(2),
            IwPolicy::Segments(3),
            IwPolicy::Segments(4),
            IwPolicy::Segments(10),
            IwPolicy::Segments(48),
            IwPolicy::Bytes(4096),
            IwPolicy::MtuFill(1536),
            IwPolicy::Rfc6928,
        ] {
            let expected = iw.initial_segments(os.effective_mss(Some(64)));
            let spec = TestbedSpec::new(host(os.clone(), iw, 60_000), Protocol::Http);
            let (result, _) = probe_host(&spec);
            let measured = result.and_then(|r| r.iw_estimate());
            let ok = measured == Some(expected);
            if !ok {
                failures += 1;
            }
            println!(
                "  {:<9} {:<16} {:>8}  {:>8}  {}",
                os.name,
                format!("{iw:?}"),
                expected,
                measured.map_or("-".into(), |m| m.to_string()),
                if ok { "yes" } else { "NO" }
            );
        }
    }

    println!("\nexperiment 2: insufficient data is flagged, not misreported");
    for (body, note) in [(120u32, "tiny page"), (400, "default-page size")] {
        let spec = TestbedSpec::new(
            host(OsProfile::linux(), IwPolicy::Segments(10), body),
            Protocol::Http,
        );
        let (result, _) = probe_host(&spec);
        match result.unwrap().primary_verdict().unwrap() {
            MssVerdict::FewData(lb) => {
                println!("  {note}: few-data, lower bound {lb} (correct)");
            }
            other => {
                failures += 1;
                println!("  {note}: WRONG verdict {other:?}");
            }
        }
    }

    println!("\nexperiment 3: random loss (netem-style), 2% both ways");
    let mut correct = 0;
    let trials = 40;
    for seed in 0..trials {
        let mut spec = TestbedSpec::new(
            host(OsProfile::linux(), IwPolicy::Segments(10), 60_000),
            Protocol::Http,
        );
        spec.link = LinkConfig {
            latency: Duration::from_millis(10),
            jitter: Duration::from_millis(2),
            loss: 0.02,
            ..LinkConfig::default()
        };
        spec.seed = 1000 + seed;
        let (result, _) = probe_host(&spec);
        if result.and_then(|r| r.iw_estimate()) == Some(10) {
            correct += 1;
        }
    }
    println!(
        "  exact IW10 recovered in {correct}/{trials} lossy runs \
         (paper: all correct absent tail loss)"
    );
    if correct < trials * 8 / 10 {
        failures += 1;
    }

    println!("\nexperiment 4: exact tail loss underestimates by one");
    // Drop the 10th data segment (reverse index: synack=0, data 1..=10).
    let mut spec = TestbedSpec::new(
        host(OsProfile::linux(), IwPolicy::Segments(10), 60_000),
        Protocol::Http,
    );
    spec.link = LinkConfig::testbed().with_reverse_drop(10);
    let (result, _) = probe_host(&spec);
    let result = result.unwrap();
    let first_probe = &result.runs[0].1[0];
    println!("  first probe under tail loss: {first_probe:?}");
    match first_probe {
        iw_core::ProbeOutcome::Success { segments, .. } if *segments == 9 => {
            println!("  single probe: IW 9 (one too low — undetectable, as §3.5 reports)");
        }
        other => {
            failures += 1;
            println!("  UNEXPECTED: {other:?}");
        }
    }
    // The vote across the three probes (loss hit only the first) fixes it.
    match result.primary_verdict().unwrap() {
        MssVerdict::Success(10) => {
            println!("  3-probe maximum vote: IW 10 (multi-probe rescue works)")
        }
        other => {
            failures += 1;
            println!("  vote FAILED to rescue: {other:?}");
        }
    }

    println!("\n{failures} failures");
    std::process::exit(i32::from(failures > 0));
}
