//! Experiment F3 — Figure 3: the Internet-wide IW distribution for HTTP
//! and TLS, plus the sampling study (100/50/30/10/1 % subsamples and 30
//! independent 1 % samples with mean and 99 %-quantile).

use iw_analysis::compare::{check_fig3, render_checks};
use iw_analysis::figures::{render_iw_bars, render_sampling_panel};
use iw_analysis::histogram::IwHistogram;
use iw_analysis::sampling::{repeated_sample_stats, stability, subsample_histogram};
use iw_bench::{banner, full_scan, standard_population, Scale};
use iw_core::Protocol;

fn main() {
    let scale = Scale::from_env();
    banner(&format!(
        "Figure 3: IW distribution + sampling ({scale:?} scale)"
    ));
    let population = standard_population(scale);

    let http = full_scan(&population, Protocol::Http);
    let tls = full_scan(&population, Protocol::Tls);
    let h_http = IwHistogram::from_results(&http.results);
    let h_tls = IwHistogram::from_results(&tls.results);

    print!("{}", render_iw_bars("HTTP 100%", &h_http, 0.001, false));
    println!();
    print!("{}", render_iw_bars("TLS 100%", &h_tls, 0.001, false));

    // Subsampling panel (the "1% is enough" claim). At small scales a 1%
    // subsample is a handful of hosts, so use the scale-appropriate floor.
    let small_frac = match scale {
        Scale::Smoke | Scale::Small => 0.10,
        Scale::Medium => 0.05,
        Scale::Large => 0.01,
    };
    let subs: Vec<(String, IwHistogram)> = [0.5, 0.3, small_frac]
        .iter()
        .map(|f| {
            (
                format!("{:.0}%", f * 100.0),
                subsample_histogram(&http.results, *f, 0xfeed),
            )
        })
        .collect();
    let stats = repeated_sample_stats(&http.results, small_frac, 30, 0xfade);
    println!("\nHTTP sampling panel:");
    print!("{}", render_sampling_panel(&h_http, &subs, &stats));

    // Stability judged like the paper's Fig. 3 error bars: per dominant
    // bar, the worst deviation of any sample from the full distribution.
    let linf = stats
        .iter()
        .filter(|b| h_http.fraction(b.iw) >= 0.01)
        .map(|b| {
            (b.max - h_http.fraction(b.iw))
                .abs()
                .max((b.min - h_http.fraction(b.iw)).abs())
        })
        .fold(0.0f64, f64::max);
    let l1 = stability(&http.results, small_frac, 30, 0xfade);
    println!(
        "\n30 × {:.0}% samples vs full distribution: worst per-bar deviation {linf:.4}, max L1 {l1:.4}",
        small_frac * 100.0
    );
    // Threshold: ~3.5σ of a binomial bar at the sample size (the paper's
    // 1% of 24M hosts gives σ≈0.001; our scaled samples are noisier).
    let sample_n = (h_http.total() as f64 * small_frac).max(1.0);
    let threshold = 3.5 * (0.25 / sample_n).sqrt();
    println!("  (binomial 3.5-sigma threshold at n={sample_n:.0}: {threshold:.4})");
    let stable = linf < threshold;
    println!(
        "[{}] F3: small random samples reproduce the distribution",
        if stable { "PASS" } else { "FAIL" }
    );

    println!("\nshape checks:");
    let checks = check_fig3(&h_http, &h_tls);
    print!("{}", render_checks(&checks));
    std::process::exit(i32::from(checks.iter().any(|c| !c.pass) || !stable));
}
