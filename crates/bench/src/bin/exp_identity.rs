//! Determinism gate: drives the standard scan across the engine's
//! supported execution shapes (threads 1 and 4, plain and
//! resilience-hardened) and asserts that everything the scan is
//! specified to produce deterministically — per-host results, the
//! Table 1 summary, open ports, MTU results, and the canonical metrics
//! snapshot — is byte-identical between the 1- and 4-shard runs of the
//! same profile. This is the gate the hot-path engine work is held to;
//! the process exits non-zero on any divergence.
//!
//! Virtual `duration` is reported but not compared: the sharded figure
//! is the max over per-shard clocks, and a single shard pacing the
//! whole space ends one pace tick after a quarter-space shard by
//! construction (the gap predates the timer-wheel engine).

use iw_bench::{standard_population, Scale, SEED};
use iw_core::{Protocol, ResilienceConfig, ScanConfig, ScanRunner};
use iw_internet::Population;
use std::fmt::Write as _;
use std::sync::Arc;

/// The canonical dump: byte-identical across shard shapes, or the gate
/// fails.
fn dump(population: &Arc<Population>, threads: u32, hardened: bool) -> String {
    let mut config = ScanConfig::study(Protocol::Http, population.space_size(), SEED);
    config.rate_pps = 4_000_000;
    config.telemetry.record_events = true;
    config.telemetry.record_rtt = true;
    if hardened {
        config.resilience = ResilienceConfig::hardened();
    }
    let out = ScanRunner::new(population)
        .config(config)
        .shards(threads)
        .run();
    println!("duration (not compared): {:?}", out.duration);
    let mut s = String::new();
    writeln!(s, "summary: {:?}", out.summary).unwrap();
    writeln!(s, "open_ports: {:?}", out.open_ports).unwrap();
    writeln!(s, "mtu_results: {:?}", out.mtu_results).unwrap();
    writeln!(s, "metrics: {}", out.telemetry.metrics.to_canonical_json()).unwrap();
    for r in &out.results {
        writeln!(s, "{r:?}").unwrap();
    }
    s
}

fn main() {
    let population = standard_population(Scale::from_env());
    let mut failures = 0;
    for hardened in [false, true] {
        let profile = if hardened { "hardened" } else { "plain" };
        let mut dumps = Vec::new();
        for threads in [1u32, 4] {
            println!("== threads={threads} {profile}");
            dumps.push(dump(&population, threads, hardened));
        }
        if dumps[0] == dumps[1] {
            println!(
                "{profile}: threads 1 vs 4 byte-identical ({} bytes)",
                dumps[0].len()
            );
        } else {
            let at = dumps[0]
                .lines()
                .zip(dumps[1].lines())
                .position(|(a, b)| a != b);
            eprintln!("{profile}: threads 1 vs 4 DIVERGE (first differing line: {at:?})");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("determinism gate FAILED for {failures} profile(s)");
        std::process::exit(1);
    }
    println!("determinism gate passed");
}
