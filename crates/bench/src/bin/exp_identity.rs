//! Determinism gate: drives the standard scan across the engine's
//! supported execution shapes — the single-threaded reference, the fed
//! 1-shard pipeline, and truly concurrent 4- and 8-sender topologies
//! (the 8-sender shape also exercises receiver multiplexing, 3 workers
//! driving 8 worlds) — in plain and resilience-hardened profiles, and
//! asserts that everything the scan is specified to produce
//! deterministically — per-host results, the Table 1 summary, open
//! ports, MTU results, and the canonical metrics snapshot — is
//! byte-identical across all of them. This is the gate the sharded
//! TX/RX engine is held to; the process exits non-zero on divergence.
//!
//! Virtual `duration` is reported but not compared: the sharded figure
//! is the max over per-shard clocks, and a single shard pacing the
//! whole space ends one pace tick after a quarter-space shard by
//! construction (the gap predates the timer-wheel engine).

use iw_bench::{standard_population, Scale, SEED};
use iw_core::{Protocol, ResilienceConfig, ScanConfig, ScanRunner, Topology};
use iw_internet::Population;
use std::fmt::Write as _;
use std::sync::Arc;

/// The execution shapes under test. The first is the reference; every
/// later shape must reproduce its bytes exactly.
const SHAPES: [(&str, Topology); 4] = [
    ("single", Topology::Single),
    (
        "threads 1",
        Topology::Threads {
            senders: 1,
            receivers: 1,
        },
    ),
    (
        "threads 4",
        Topology::Threads {
            senders: 4,
            receivers: 4,
        },
    ),
    (
        "threads 8x3",
        Topology::Threads {
            senders: 8,
            receivers: 3,
        },
    ),
];

/// The canonical dump: byte-identical across execution shapes, or the
/// gate fails.
fn dump(population: &Arc<Population>, topology: Topology, hardened: bool) -> String {
    let mut config = ScanConfig::study(Protocol::Http, population.space_size(), SEED);
    config.rate_pps = 4_000_000;
    config.telemetry.record_events = true;
    config.telemetry.record_rtt = true;
    if hardened {
        config.resilience = ResilienceConfig::hardened();
    }
    let out = ScanRunner::new(population)
        .config(config)
        .topology(topology)
        .run();
    println!("duration (not compared): {:?}", out.duration);
    let mut s = String::new();
    writeln!(s, "summary: {:?}", out.summary).unwrap();
    writeln!(s, "open_ports: {:?}", out.open_ports).unwrap();
    writeln!(s, "mtu_results: {:?}", out.mtu_results).unwrap();
    writeln!(s, "metrics: {}", out.telemetry.metrics.to_canonical_json()).unwrap();
    for r in &out.results {
        writeln!(s, "{r:?}").unwrap();
    }
    s
}

fn main() {
    let population = standard_population(Scale::from_env());
    let mut failures = 0;
    for hardened in [false, true] {
        let profile = if hardened { "hardened" } else { "plain" };
        let mut reference: Option<String> = None;
        for (label, topology) in SHAPES {
            println!("== {label} {profile}");
            let d = dump(&population, topology, hardened);
            match &reference {
                None => {
                    reference = Some(d);
                }
                Some(r) if *r == d => {
                    println!("{profile}: {label} matches single ({} bytes)", d.len());
                }
                Some(r) => {
                    let at = r.lines().zip(d.lines()).position(|(a, b)| a != b);
                    eprintln!(
                        "{profile}: {label} DIVERGES from single (first differing line: {at:?})"
                    );
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("determinism gate FAILED for {failures} shape/profile pair(s)");
        std::process::exit(1);
    }
    println!("determinism gate passed");
}
