//! Experiment §4.3/§5 (future work) — per-service IW configurations on
//! CDN edges, measured with a *curated host list*.
//!
//! The paper: "some services run IW configurations customized to
//! different services … we used our scanner to manually probe few
//! Akamai HTTP hosted sites and found different IW configurations
//! (e.g., IW 16 and 32). Assessing these differences … requires
//! presenting valid URLs hosted by Akamai", which the anonymous
//! Internet-wide methodology deliberately avoids — and the paper names
//! closing that gap as future work.
//!
//! This experiment does exactly that against the simulated Akamai
//! class: every edge host defaults to IW 4 but carries per-property
//! overrides (`www.<site>` → IW 16, `media.<site>` → IW 32) that only a
//! probe presenting the right Host header can trigger.

use iw_bench::{banner, standard_population, Scale, SEED};
use iw_core::{MssVerdict, Protocol, ScanConfig, ScanRunner, TargetSpec};
use iw_internet::registry::NetClass;
use std::collections::HashMap;

fn scan_with_domains(
    population: &std::sync::Arc<iw_internet::Population>,
    targets: Vec<(u32, Option<String>)>,
) -> HashMap<u32, MssVerdict> {
    let mut config = ScanConfig::study(Protocol::Http, population.space_size(), SEED);
    config.targets = TargetSpec::List(targets);
    config.rate_pps = 4_000_000;
    let out = ScanRunner::new(population).config(config).run();
    out.results
        .iter()
        .filter_map(|r| r.primary_verdict().map(|v| (r.ip, v)))
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    banner(&format!(
        "§4.3/§5: per-service IWs via curated host lists ({scale:?} scale)"
    ));
    let population = standard_population(scale);

    // Gather Akamai-class edge hosts that speak HTTP.
    let mut edges = Vec::new();
    for ip in 0..population.space_size() {
        if let Some(gt) = population.ground_truth(ip) {
            if gt.class == NetClass::CdnAkamai && gt.http {
                edges.push((ip, population.canonical_domain(ip).expect("responsive")));
            }
        }
        if edges.len() >= 60 {
            break;
        }
    }
    println!(
        "probing {} Akamai-class edge hosts three ways\n",
        edges.len()
    );

    // 1. Anonymously (the Internet-wide scan's view).
    let anon = scan_with_domains(
        &population,
        edges.iter().map(|(ip, _)| (*ip, None)).collect(),
    );
    // 2. With the "www" property.
    let www = scan_with_domains(
        &population,
        edges
            .iter()
            .map(|(ip, d)| (*ip, Some(format!("www.{d}"))))
            .collect(),
    );
    // 3. With the "media" property.
    let media = scan_with_domains(
        &population,
        edges
            .iter()
            .map(|(ip, d)| (*ip, Some(format!("media.{d}"))))
            .collect(),
    );

    let hist = |map: &HashMap<u32, MssVerdict>| {
        let mut h: HashMap<String, u32> = HashMap::new();
        for v in map.values() {
            let key = match v {
                MssVerdict::Success(iw) => format!("IW{iw}"),
                MssVerdict::FewData(lb) => format!("few-data(≥{lb})"),
                other => format!("{other:?}"),
            };
            *h.entry(key).or_insert(0) += 1;
        }
        let mut rows: Vec<_> = h.into_iter().collect();
        rows.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        rows
    };

    println!("anonymous scan (no Host header — the paper's method):");
    for (k, n) in hist(&anon) {
        println!("  {k:<16} {n}");
    }
    println!("\ncurated scan, Host: www.<site>:");
    for (k, n) in hist(&www) {
        println!("  {k:<16} {n}");
    }
    println!("\ncurated scan, Host: media.<site>:");
    for (k, n) in hist(&media) {
        println!("  {k:<16} {n}");
    }

    // Shape checks: the anonymous scan sees only the default (IW 4 or
    // few-data); the curated scans reveal IW 16 and IW 32 on the very
    // same hosts.
    let count = |map: &HashMap<u32, MssVerdict>, iw: u32| {
        map.values()
            .filter(|v| matches!(v, MssVerdict::Success(x) if *x == iw))
            .count()
    };
    let anon_sees_custom = count(&anon, 16) + count(&anon, 32);
    let www_16 = count(&www, 16);
    let media_32 = count(&media, 32);
    let n = edges.len();
    println!("\npaper: Akamai default IW4; per-service IW16/IW32 behind valid URLs");
    println!(
        "measured: anonymous IW16/32 sightings {anon_sees_custom}; \
         www → IW16 on {www_16}/{n}; media → IW32 on {media_32}/{n}"
    );

    let ok = anon_sees_custom == 0 && www_16 == n && media_32 == n;
    println!(
        "\n[{}] curated host lists reveal per-service IWs invisible to the anonymous scan",
        if ok { "PASS" } else { "FAIL" }
    );
    std::process::exit(i32::from(!ok));
}
