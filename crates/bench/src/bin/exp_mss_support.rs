//! Experiment FN1 — footnote 1: RFC 1191 ICMP path-MTU discovery over
//! the population, estimating typical MSS support. Paper: 99 % of hosts
//! support an MSS of 1336 B, 80 % support 1436 B.

use iw_bench::{banner, compare_line, standard_population, Scale, SEED};
use iw_core::{Protocol, ScanConfig, ScanRunner};

fn main() {
    let scale = Scale::from_env();
    banner(&format!(
        "Footnote 1: ICMP path-MTU discovery ({scale:?} scale)"
    ));
    let population = standard_population(scale);
    let mut config = ScanConfig::study(Protocol::IcmpMtu, population.space_size(), SEED);
    config.rate_pps = 4_000_000;
    let out = ScanRunner::new(&population)
        .config(config)
        .topology(iw_bench::bench_topology())
        .run();

    let n = out.mtu_results.len() as f64;
    println!("hosts answering ICMP: {}", out.mtu_results.len());
    let mut mtu_hist = std::collections::BTreeMap::new();
    for r in &out.mtu_results {
        *mtu_hist.entry(r.mtu).or_insert(0u64) += 1;
    }
    for (mtu, count) in &mtu_hist {
        println!("  path MTU {mtu}: {count} hosts (max MSS {})", mtu - 40);
    }

    // MSS m is supported iff path MTU ≥ m + 40.
    let support =
        |mss: u32| out.mtu_results.iter().filter(|r| r.mtu >= mss + 40).count() as f64 / n * 100.0;
    println!("\npaper vs measured:");
    compare_line("hosts supporting MSS 1336", 99.0, support(1336), "%");
    compare_line("hosts supporting MSS 1436", 80.0, support(1436), "%");

    let ok = (support(1336) - 99.0).abs() < 1.5 && (support(1436) - 80.0).abs() < 3.0;
    println!(
        "\n[{}] FN1 within calibration bands",
        if ok { "PASS" } else { "FAIL" }
    );
    std::process::exit(i32::from(!ok));
}
