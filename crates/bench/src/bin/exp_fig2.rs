//! Experiment F2 — Figure 2: CCDF of certificate-chain lengths with the
//! IW·MSS coverage thresholds, against the paper's censys statistics
//! (mean 2186 B, min 36 B, max 65 kB; ≥640 B for >86 %, ≥2176 B for
//! ≈50 %), plus the measured path-MTU support for the typical-MSS lines
//! (footnote 1: 99 % support MSS 1336, 80 % support MSS 1436).

use iw_analysis::figures::Fig2;
use iw_bench::{banner, compare_line, Scale, SEED};
use iw_internet::certs;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 2: certificate chain length CCDF");
    let n = match scale {
        Scale::Smoke | Scale::Small => 100_000,
        Scale::Medium => 500_000,
        Scale::Large => 2_000_000,
    };
    let samples = certs::censys_sample(SEED, n);
    let fig = Fig2::new(samples);
    print!("{}", fig.render());

    println!("\npaper vs measured:");
    compare_line("mean chain length", 2186.0, fig.ccdf.mean(), "B");
    compare_line(
        "P(chain >= 640 B) [MSS 64, IW 10]",
        86.0,
        fig.ccdf.at(640) * 100.0,
        "%",
    );
    compare_line(
        "P(chain >= 2176 B) [MSS 64, IW 34]",
        50.0,
        fig.ccdf.at(2176) * 100.0,
        "%",
    );
    compare_line("min chain", 36.0, f64::from(fig.ccdf.min()), "B");
    compare_line(
        "max chain (paper: 65 kB)",
        65_000.0,
        f64::from(fig.ccdf.max()),
        "B",
    );

    let ok = (fig.ccdf.mean() - 2186.0).abs() < 250.0
        && (fig.ccdf.at(640) - 0.86).abs() < 0.03
        && (fig.ccdf.at(2176) - 0.50).abs() < 0.03;
    println!(
        "\n[{}] F2 statistics within calibration bands",
        if ok { "PASS" } else { "FAIL" }
    );
    std::process::exit(i32::from(!ok));
}
