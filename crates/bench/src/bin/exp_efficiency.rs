//! Experiment S34 — §3.4 efficiency: the stateful IW scan versus the
//! unmodified single-packet port scan at 150 k packets/s.
//!
//! Paper: the HTTP IW scan needs 7.5 h for the IPv4 space versus 6.8 h
//! for a bare port scan (ratio 1.10). Both scans are *send-bound*: wall
//! time ≈ total transmitted packets / rate. The extra cost of stateful
//! probing is the per-responsive-host conversation (≈12–40 packets),
//! diluted by the Internet's low responsiveness (~1.3 % of probed
//! addresses). We measure packets per host on the scaled space and
//! extrapolate the send-bound ratio to the paper's density — the tail of
//! in-flight conversations after the last SYN is constant (~minutes) and
//! vanishes at Internet scale, so it is reported separately.

use iw_bench::{
    banner, compare_line, full_scan, standard_population, write_metrics_snapshot, Scale,
};
use iw_core::Protocol;

fn main() {
    let scale = Scale::from_env();
    banner(&format!(
        "§3.4 efficiency: IW scan vs port scan ({scale:?} scale)"
    ));
    let population = standard_population(scale);
    let rate = 150_000f64;

    let port = full_scan(&population, Protocol::PortScan);
    let iw = full_scan(&population, Protocol::Http);
    write_metrics_snapshot("efficiency_port", &port);
    write_metrics_snapshot("efficiency_iw", &iw);

    let targets = port.summary.targets as f64;
    let port_tx = port.sim_stats.scanner_tx as f64;
    let iw_tx = iw.sim_stats.scanner_tx as f64;
    let responsive = iw.summary.reachable.max(1) as f64;

    println!(
        "port scan : {targets:>9.0} targets, {port_tx:>9.0} packets tx ({:.3}/target)",
        port_tx / targets
    );
    println!(
        "IW scan   : {targets:>9.0} targets, {iw_tx:>9.0} packets tx ({:.3}/target), {responsive:.0} responsive",
        iw_tx / targets
    );
    let extra_per_host = (iw_tx - port_tx) / responsive;
    println!("extra scanner packets per responsive host: {extra_per_host:.1}");

    // Send-bound durations at our scale and density.
    let port_secs = port_tx / rate;
    let iw_secs = iw_tx / rate;
    let measured_ratio = iw_secs / port_secs;
    println!(
        "\nsend-bound duration at 150 kpps: port {port_secs:.2}s, IW {iw_secs:.2}s \
         (ratio {measured_ratio:.2} at our {:.1}% responsive density)",
        responsive / targets * 100.0
    );
    println!(
        "post-send drain tail (constant, vanishes at Internet scale): {}",
        iw.duration
    );

    // Extrapolate to the paper's space and density: 3.7e9 probed
    // addresses, 48.3 M responsive (1.31 %).
    let paper_density = 48.3e6 / 3.7e9;
    let full_ratio = 1.0 + paper_density * extra_per_host;
    let paper_ratio = 7.5 / 6.8;
    println!("\npaper vs measured:");
    compare_line(
        "IW/port duration ratio (at paper density)",
        paper_ratio,
        full_ratio,
        "x",
    );
    let port_hours = 3.7e9 / rate / 3600.0;
    compare_line("port scan duration, full IPv4", 6.8, port_hours, "h");
    compare_line(
        "IW scan duration, full IPv4",
        7.5,
        port_hours * full_ratio,
        "h",
    );

    let ok = (1.02..=1.40).contains(&full_ratio);
    println!(
        "\n[{}] S34: full TCP conversations cost only a modest slowdown \
         (extrapolated ratio {full_ratio:.2}, paper {paper_ratio:.2})",
        if ok { "PASS" } else { "FAIL" }
    );
    std::process::exit(i32::from(!ok));
}
