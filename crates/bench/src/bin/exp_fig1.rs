//! Experiment F1 — Figure 1: the scan procedure, as a live packet trace.
//!
//! Runs one probe against a testbed host with trace recording and prints
//! the message sequence: SYN [MSS=64] → SYN-ACK → ACK+request → the IW
//! flight → retransmission → verification ACK (win = 2·MSS) → released
//! segments → RST.

use iw_core::testbed::{probe_host, TestbedSpec};
use iw_core::Protocol;
use iw_hoststack::HostConfig;

fn main() {
    iw_bench::banner("Figure 1: scan procedure (annotated packet trace)");
    let mut spec = TestbedSpec::new(HostConfig::simple_web(50_000), Protocol::Http);
    spec.record_trace = true;
    let (result, trace) = probe_host(&spec);

    println!("{}", trace.render_tcp());
    let result = result.expect("testbed host must answer");
    println!("estimate per probe (3 × MSS 64, then 3 × MSS 128):");
    for (mss, outcomes) in &result.runs {
        println!("  MSS {mss}: {outcomes:?}");
    }
    println!("\nhost verdict: {:?}", result.host_verdict);
    println!("(configured ground truth: IW 10 segments, Linux, 50 kB page)");
}
