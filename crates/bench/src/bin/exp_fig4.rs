//! Experiment F4 — Figure 4: the Alexa-top-list IW distribution
//! (log-scale counts), against the paper: IW10 ≈85 % (HTTP) / ≈80 %
//! (TLS), success rates rising to 80 % / 85 %, and the observation that
//! popular infrastructure runs much newer IW configurations than the
//! Internet at large.

use iw_analysis::compare::{check_fig4, render_checks};
use iw_analysis::figures::render_iw_bars;
use iw_analysis::histogram::IwHistogram;
use iw_bench::{alexa_scan, banner, compare_line, full_scan, standard_population, Scale};
use iw_core::Protocol;

fn main() {
    let scale = Scale::from_env();
    banner(&format!(
        "Figure 4: Alexa top-list IW distribution ({scale:?} scale)"
    ));
    let population = standard_population(scale);
    let n = scale.alexa_n();

    let alexa_http = alexa_scan(&population, Protocol::Http, n);
    let alexa_tls = alexa_scan(&population, Protocol::Tls, n);
    let full_http = full_scan(&population, Protocol::Http);

    let h_http = IwHistogram::from_results(&alexa_http.results);
    let h_tls = IwHistogram::from_results(&alexa_tls.results);
    let h_full = IwHistogram::from_results(&full_http.results);

    print!("{}", render_iw_bars("Alexa HTTP", &h_http, 0.0, true));
    println!();
    print!("{}", render_iw_bars("Alexa TLS", &h_tls, 0.0, true));

    // The paper's rank observation: "only IW10 is more pronounced for
    // higher ranked HTTP hosts". The list is rank-ordered, so quartile
    // slices of the target list show the gradient.
    println!("\nIW10 share by rank quartile (rank 1 = most popular):");
    let list = iw_internet::alexa::build(&population, n, 1);
    for (label, range) in [
        ("Q1 (top)", 0..n / 4),
        ("Q2", n / 4..n / 2),
        ("Q3", n / 2..3 * n / 4),
        ("Q4 (tail)", 3 * n / 4..n),
    ] {
        let ips: std::collections::HashSet<u32> = list[range].iter().map(|e| e.ip).collect();
        let mut hist_q = IwHistogram::new();
        for r in &alexa_http.results {
            if ips.contains(&r.ip) {
                if let Some(iw) = r.iw_estimate() {
                    hist_q.add(iw);
                }
            }
        }
        println!(
            "  {label:<10} {:>5.1}%  (n={})",
            hist_q.fraction(10) * 100.0,
            hist_q.total()
        );
    }

    let (hs, _, _) = alexa_http.summary.rates();
    let (ts, _, _) = alexa_tls.summary.rates();
    println!("\npaper vs measured:");
    compare_line("Alexa HTTP success rate", 80.0, hs, "%");
    compare_line("Alexa TLS success rate", 85.0, ts, "%");
    compare_line(
        "Alexa HTTP IW10 share",
        85.0,
        h_http.fraction(10) * 100.0,
        "%",
    );
    compare_line(
        "Alexa TLS IW10 share",
        80.0,
        h_tls.fraction(10) * 100.0,
        "%",
    );

    println!("\nshape checks:");
    let checks = check_fig4(&h_http, &h_tls, &h_full);
    print!("{}", render_checks(&checks));
    std::process::exit(i32::from(checks.iter().any(|c| !c.pass)));
}
