//! Run every experiment in sequence, sharing the scans, and print a
//! combined paper-vs-measured report — the generator behind
//! EXPERIMENTS.md. Writes machine-readable results to
//! `target/experiments/` as JSON.

use iw_analysis::compare::{
    check_fig3, check_fig4, check_table1, check_table2, check_table3, render_checks, Check,
};
use iw_analysis::dbscan::{dbscan, summarize, AsPoint};
use iw_analysis::figures::{render_iw_bars, Fig2};
use iw_analysis::histogram::IwHistogram;
use iw_analysis::sampling::repeated_sample_stats;
use iw_analysis::tables::{Table1, Table2, Table3};
use iw_bench::{alexa_scan, banner, full_scan, standard_population, Scale, SEED};
use iw_core::{HostVerdict, Protocol};
use iw_internet::certs;
use std::collections::HashMap;

fn main() {
    let scale = Scale::from_env();
    banner(&format!(
        "Full reproduction run ({scale:?} scale; IW_SCALE=medium|large for more)"
    ));
    let population = standard_population(scale);
    let mut all_checks: Vec<Check> = Vec::new();

    println!("\nscanning HTTP + TLS (full space) ...");
    let http = full_scan(&population, Protocol::Http);
    let tls = full_scan(&population, Protocol::Tls);

    // ---- Table 1 ----
    banner("Table 1");
    let t1 = Table1::new(&[("HTTP", &http.summary), ("TLS", &tls.summary)]);
    print!("{}", t1.render());
    all_checks.extend(check_table1(&t1));

    // ---- Table 2 ----
    banner("Table 2");
    let t2h = Table2::new(&http.results);
    let t2t = Table2::new(&tls.results);
    print!("{}", t2h.render("HTTP"));
    print!("{}", t2t.render("TLS"));
    all_checks.extend(check_table2(&t2h, &t2t));

    // ---- Table 3 ----
    banner("Table 3");
    let t3h = Table3::new(&http.results, &population);
    let t3t = Table3::new(&tls.results, &population);
    println!("HTTP:\n{}", t3h.render());
    println!("TLS:\n{}", t3t.render());
    all_checks.extend(check_table3(&t3h, &t3t));

    // ---- Figure 2 ----
    banner("Figure 2");
    let fig2 = Fig2::new(certs::censys_sample(SEED, 200_000));
    print!("{}", fig2.render());
    all_checks.push(Check {
        name: "F2: censys statistics calibrated".into(),
        pass: (fig2.ccdf.mean() - 2186.0).abs() < 250.0 && (fig2.ccdf.at(640) - 0.86).abs() < 0.03,
        detail: format!(
            "mean {:.0} (paper 2186), P(>=640) {:.2} (paper 0.86)",
            fig2.ccdf.mean(),
            fig2.ccdf.at(640)
        ),
    });

    // ---- Figure 3 ----
    banner("Figure 3");
    let h_http = IwHistogram::from_results(&http.results);
    let h_tls = IwHistogram::from_results(&tls.results);
    print!("{}", render_iw_bars("HTTP", &h_http, 0.001, false));
    print!("{}", render_iw_bars("TLS", &h_tls, 0.001, false));
    all_checks.extend(check_fig3(&h_http, &h_tls));
    let _ = repeated_sample_stats(&http.results, 0.1, 10, 1);

    // ---- Figure 4 ----
    banner("Figure 4 (Alexa)");
    let a_http = alexa_scan(&population, Protocol::Http, scale.alexa_n());
    let a_tls = alexa_scan(&population, Protocol::Tls, scale.alexa_n());
    let ah = IwHistogram::from_results(&a_http.results);
    let at = IwHistogram::from_results(&a_tls.results);
    print!("{}", render_iw_bars("Alexa HTTP", &ah, 0.0, true));
    print!("{}", render_iw_bars("Alexa TLS", &at, 0.0, true));
    all_checks.extend(check_fig4(&ah, &at, &h_http));

    // ---- Figure 5 ----
    banner("Figure 5 (DBSCAN)");
    for (label, out) in [("HTTP", &http), ("TLS", &tls)] {
        let mut per_as: HashMap<u32, HashMap<u32, u64>> = HashMap::new();
        for r in &out.results {
            if let (Some(iw), Some(meta)) = (r.iw_estimate(), population.meta(r.ip)) {
                *per_as.entry(meta.asn).or_default().entry(iw).or_insert(0) += 1;
            }
        }
        let points: Vec<AsPoint> = per_as
            .into_iter()
            .filter(|(_, c)| c.values().sum::<u64>() >= 3)
            .map(|(asn, c)| AsPoint::from_counts(asn, &c.into_iter().collect::<Vec<_>>()))
            .collect();
        let labels = dbscan(&points, 0.12, 5);
        let clusters = summarize(&points, &labels);
        println!(
            "{label}: {} clusters over {} ASes",
            clusters.len(),
            points.len()
        );
        all_checks.push(Check {
            name: format!("F5: {label} forms ≥3 AS clusters"),
            pass: clusters.len() >= 3,
            detail: format!("{} clusters (paper: 3 each)", clusters.len()),
        });
    }

    // ---- §4.2 byte limits ----
    banner("§4.2 byte-limited hosts");
    let mut four_k = 0u64;
    let mut mtu_fill = 0u64;
    for r in &http.results {
        match r.host_verdict {
            HostVerdict::ByteBased(4096) => four_k += 1,
            HostVerdict::ByteBased(1536) => mtu_fill += 1,
            _ => {}
        }
    }
    println!("4096 B hosts: {four_k}; 1536 B hosts: {mtu_fill}");
    all_checks.push(Check {
        name: "S42: both byte-limit groups detected".into(),
        pass: four_k > 0 && mtu_fill > 0,
        detail: format!("4kB {four_k}, 1536B {mtu_fill}"),
    });

    // ---- Verdict ----
    banner("combined shape-check verdict");
    print!("{}", render_checks(&all_checks));
    let failed = all_checks.iter().filter(|c| !c.pass).count();
    println!(
        "\n{} of {} checks passed",
        all_checks.len() - failed,
        all_checks.len()
    );

    // Machine-readable dump.
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir).expect("create target/experiments");
    // CSV series for external plotting.
    use iw_analysis::export;
    let thresholds: Vec<u32> = (0..=65).map(|k| k * 1000).collect();
    export::to_file(&dir.join("fig2_ccdf.csv"), |b| {
        export::ccdf_csv(&fig2.ccdf, &thresholds, b)
    })
    .expect("fig2 csv");
    export::to_file(&dir.join("fig3_http.csv"), |b| {
        export::histogram_csv(&h_http, b)
    })
    .expect("fig3 http csv");
    export::to_file(&dir.join("fig3_tls.csv"), |b| {
        export::histogram_csv(&h_tls, b)
    })
    .expect("fig3 tls csv");
    export::to_file(&dir.join("fig4_alexa_http.csv"), |b| {
        export::histogram_csv(&ah, b)
    })
    .expect("fig4 csv");
    let json = serde_json::json!({
        "scale": format!("{scale:?}"),
        "http_summary": http.summary,
        "tls_summary": tls.summary,
        "checks": all_checks.iter().map(|c| {
            serde_json::json!({"name": c.name, "pass": c.pass, "detail": c.detail})
        }).collect::<Vec<_>>(),
    });
    std::fs::write(
        dir.join("exp_all.json"),
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write results");
    println!("results written to target/experiments/exp_all.json");
    std::process::exit(i32::from(failed > 0));
}
