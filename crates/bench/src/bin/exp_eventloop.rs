//! Event-loop throughput scenario, emitting `BENCH_eventloop.json`.
//!
//! The primary measurement drives the `iw-netsim` kernel directly with
//! the hot-path shape of a resilient paced scan: a scanner that emits
//! 64-probe batches of SYN-sized datagrams every virtual millisecond,
//! arms a 1–3 s retransmission timer per probe (the SYN-retry pattern,
//! so ~10⁵ timers stay pending), and 512 echo hosts answering every
//! probe. Events/sec and packets/sec come straight from the kernel's
//! counters; the event count is identical on every engine, so the
//! comparison is wall-clock only.
//!
//! The committed `baseline` section is the pre-overhaul engine
//! (`BinaryHeap` queue, per-arrival `Vec<u8>` clones, per-emit
//! allocations) measured on this exact workload at Small scale; the
//! `current` section is refreshed by every run, and
//! `speedup_events_per_sec` (current ÷ baseline) is emitted when the
//! run matches the baseline's scenario shape. A secondary `scan`
//! section reports the end-to-end scan drive for context.
//!
//! `--check` validates an existing `BENCH_eventloop.json` instead of
//! measuring: the CI `bench-smoke` job runs the scenario in debug at
//! smoke scale and then fails on a missing file or malformed schema.

use iw_bench::{banner, standard_population, Scale};
use iw_core::{Protocol, ScanConfig, ScanOutput, ScanRunner, Topology};
use iw_internet::Population;
use std::sync::Arc;
use std::time::Instant;

const OUT_PATH: &str = "BENCH_eventloop.json";
const REPS: usize = 3;
const SCHEMA: &str = "iw-bench/eventloop/v2";

/// Shard counts on the cores-vs-throughput curve.
const SCALING_SHARDS: [u32; 4] = [1, 2, 4, 8];
/// The scaling gate: 4 shards must deliver at least this multiple of
/// the single-shard per-shard capacity.
const SCALING_GATE_4X: f64 = 1.5;

/// Pre-overhaul engine, recorded on this machine before the
/// timer-wheel/pooled-buffer rework landed (best of three reps, release
/// build, Small-scale churn: 10 000 rounds). Keep in sync with the
/// `baseline` section of the committed `BENCH_eventloop.json`.
const BASELINE_ENGINE: &str = "binaryheap+hashmap+alloc";
const BASELINE_WALL_SECS: f64 = 0.7031;
const BASELINE_EVENTS_PER_SEC: f64 = 2_744_995.4;
const BASELINE_PACKETS_PER_SEC: f64 = 1_820_515.1;

/// End-to-end scan drive on the pre-overhaul engine (Small scale, one
/// shard), for the secondary `scan` context section.
const SCAN_BASELINE_WALL_SECS: f64 = 0.6591;
const SCAN_BASELINE_HOSTS_PER_SEC: f64 = 198_869.3;

const CURRENT_ENGINE: &str = "timerwheel+ipmap+pool";

/// The kernel churn workload: the measured phase of this benchmark.
mod churn {
    use iw_netsim::{Duration, Effects, Endpoint, Instant, LinkConfig, Sim, SimConfig, TimerToken};

    /// Responsive-host population behind the scanner.
    pub const HOSTS: u32 = 512;
    const BASE_ADDR: u32 = 0x0A00_0001;
    /// Probes per pace tick (one tick per virtual millisecond).
    pub const BATCH: usize = 64;
    /// SYN-sized probe: 20-byte IPv4 header + 20-byte TCP header.
    pub const PROBE_BYTES: usize = 40;
    const REPLY_BYTES: usize = 40;

    const PACE_TOKEN: TimerToken = 0;
    const RETX_TOKEN: TimerToken = 1;

    pub struct Outcome {
        pub events: u64,
        pub packets: u64,
        pub pool_allocations: u64,
    }

    struct ChurnScanner {
        rounds_left: u64,
        next: u32,
        template: Vec<u8>,
        rx: u64,
    }

    impl Endpoint for ChurnScanner {
        fn on_packet(&mut self, _pkt: &[u8], _now: Instant, _fx: &mut Effects) {
            self.rx += 1;
        }
        fn on_timer(&mut self, token: TimerToken, _now: Instant, fx: &mut Effects) {
            if token == RETX_TOKEN {
                // A pending retransmission came due; the probe was
                // answered long ago, so this is the no-op cancel path.
                self.rx += 1;
                return;
            }
            if self.rounds_left == 0 {
                return;
            }
            self.rounds_left -= 1;
            for _ in 0..BATCH {
                let dst = BASE_ADDR + (self.next % HOSTS);
                let mut pkt = fx.buffer();
                pkt.extend_from_slice(&self.template);
                pkt[16..20].copy_from_slice(&dst.to_be_bytes());
                fx.send(pkt.freeze());
                // SYN-retry backoff, 1–3 s spread: the timer population
                // pending in the queue grows to ~10⁵ entries.
                fx.arm(
                    Duration::from_millis(1_000 + u64::from(self.next % 2_000)),
                    RETX_TOKEN,
                );
                self.next = self.next.wrapping_add(1);
            }
            if self.rounds_left > 0 {
                fx.arm(Duration::from_millis(1), PACE_TOKEN);
            }
        }
    }

    struct EchoHost {
        reply: Vec<u8>,
    }

    impl Endpoint for EchoHost {
        fn on_packet(&mut self, _pkt: &[u8], _now: Instant, fx: &mut Effects) {
            let mut reply = fx.buffer();
            reply.extend_from_slice(&self.reply);
            fx.send(reply.freeze());
        }
        fn on_timer(&mut self, _token: TimerToken, _now: Instant, _fx: &mut Effects) {}
    }

    /// Run `rounds` pace ticks and drain the retransmission tail.
    /// Deterministic: the event count depends only on `rounds`.
    pub fn drive(rounds: u64) -> (Outcome, f64) {
        let mut template = vec![0u8; PROBE_BYTES];
        template[0] = 0x45;
        let scanner = ChurnScanner {
            rounds_left: rounds,
            next: 0,
            template,
            rx: 0,
        };
        let factory = |_ip: u32| {
            Some((
                Box::new(EchoHost {
                    reply: vec![0u8; REPLY_BYTES],
                }) as Box<dyn Endpoint>,
                LinkConfig {
                    latency: Duration::from_millis(10),
                    jitter: Duration::ZERO,
                    loss: 0.0,
                    dup: 0.0,
                    ..LinkConfig::default()
                },
            ))
        };
        let mut sim = Sim::new(
            scanner,
            factory,
            SimConfig {
                seed: iw_bench::SEED,
                ..SimConfig::default()
            },
        );
        // Pace ticks cover `rounds` ms of virtual time; the 3 s window
        // after that drains the retransmission tail.
        let deadline = sim.now() + Duration::from_millis(rounds + 3_000);
        sim.kick_scanner(|_s, _now, fx| fx.arm(Duration::ZERO, PACE_TOKEN));
        let t0 = std::time::Instant::now();
        sim.run_until(deadline);
        let wall = t0.elapsed().as_secs_f64();
        let s = sim.stats();
        (
            Outcome {
                events: s.events,
                packets: s.scanner_tx + s.host_tx,
                pool_allocations: s.pool_allocations,
            },
            wall,
        )
    }
}

struct Measurement {
    drive_wall_secs: f64,
    events_per_sec: f64,
    packets_per_sec: f64,
    allocs_per_packet: f64,
}

fn churn_rounds(scale: Scale) -> u64 {
    match scale {
        Scale::Smoke => 500,
        Scale::Small => 10_000,
        Scale::Medium => 30_000,
        Scale::Large => 100_000,
    }
}

fn measure_churn(rounds: u64) -> Measurement {
    let mut best: Option<(churn::Outcome, f64)> = None;
    for rep in 0..REPS {
        let (out, wall) = churn::drive(rounds);
        println!("  rep {rep}: {wall:.3} s wall  {} events", out.events);
        if let Some((prev, _)) = &best {
            assert_eq!(prev.events, out.events, "churn must be deterministic");
        }
        if best.as_ref().is_none_or(|(_, b)| wall < *b) {
            best = Some((out, wall));
        }
    }
    let (out, wall) = best.expect("REPS > 0");
    let packets = out.packets as f64;
    Measurement {
        drive_wall_secs: wall,
        events_per_sec: out.events as f64 / wall,
        packets_per_sec: packets / wall,
        allocs_per_packet: out.pool_allocations as f64 / packets,
    }
}

fn scenario_threads() -> u32 {
    std::env::var("IW_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

fn drive_scan(population: &Arc<Population>, topology: Topology) -> (ScanOutput, f64) {
    let mut config = ScanConfig::study(Protocol::Http, population.space_size(), iw_bench::SEED);
    config.rate_pps = 4_000_000;
    let t0 = Instant::now();
    let out = ScanRunner::new(population)
        .config(config)
        .topology(topology)
        .run();
    (out, t0.elapsed().as_secs_f64())
}

/// Drive one shard world in isolation ([`Topology::Single`] honours the
/// config's shard tuple): the capacity probe for machines with fewer
/// cores than shards.
fn drive_world(population: &Arc<Population>, index: u32, count: u32) -> (ScanOutput, f64) {
    let mut config = ScanConfig::study(Protocol::Http, population.space_size(), iw_bench::SEED);
    config.rate_pps = 4_000_000;
    config.shard = (index, count);
    let t0 = Instant::now();
    let out = ScanRunner::new(population).config(config).run();
    (out, t0.elapsed().as_secs_f64())
}

/// One point on the cores-vs-throughput curve.
struct ScalingPoint {
    shards: u32,
    wall_secs: f64,
    /// Measured end-to-end rate with all shards live at once — bounded
    /// by the physical core count.
    hosts_per_sec_wall: f64,
    /// Pipeline capacity: total hosts over the *slowest isolated shard
    /// world* — what the topology delivers given `shards` real cores.
    hosts_per_sec_capacity: f64,
}

fn measure_scaling(population: &Arc<Population>) -> Vec<ScalingPoint> {
    SCALING_SHARDS
        .iter()
        .map(|&n| {
            let (out, wall) = drive_scan(population, Topology::threads(n));
            let hosts = out.summary.targets as f64;
            let mut slowest = 0.0f64;
            for i in 0..n {
                let (_, w) = drive_world(population, i, n);
                slowest = slowest.max(w);
            }
            let point = ScalingPoint {
                shards: n,
                wall_secs: wall,
                hosts_per_sec_wall: hosts / wall,
                hosts_per_sec_capacity: hosts / slowest,
            };
            println!(
                "  {n} shard(s): {wall:.3} s wall  {:.0} hosts/s wall  \
                 {:.0} hosts/s capacity",
                point.hosts_per_sec_wall, point.hosts_per_sec_capacity
            );
            point
        })
        .collect()
}

fn measure_scan(population: &Arc<Population>, topology: Topology) -> (Measurement, f64) {
    let mut best: Option<(ScanOutput, f64)> = None;
    for rep in 0..REPS {
        let (out, wall) = drive_scan(population, topology);
        println!("  rep {rep}: {wall:.3} s wall");
        if best.as_ref().is_none_or(|(_, b)| wall < *b) {
            best = Some((out, wall));
        }
    }
    let (out, wall) = best.expect("REPS > 0");
    let s = out.sim_stats;
    let packets = (s.scanner_tx + s.host_tx) as f64;
    let m = Measurement {
        drive_wall_secs: wall,
        events_per_sec: s.events as f64 / wall,
        packets_per_sec: packets / wall,
        allocs_per_packet: s.pool_allocations as f64 / packets,
    };
    (m, out.summary.targets as f64 / wall)
}

fn json_section(m: &Measurement, engine: &str) -> String {
    format!(
        "{{\"engine\":\"{engine}\",\"drive_wall_secs\":{:.4},\
         \"events_per_sec\":{:.1},\"packets_per_sec\":{:.1},\"allocs_per_packet\":{:.3}}}",
        m.drive_wall_secs, m.events_per_sec, m.packets_per_sec, m.allocs_per_packet
    )
}

fn baseline_section() -> String {
    format!(
        "{{\"engine\":\"{BASELINE_ENGINE}\",\"scale\":\"Small\",\
         \"drive_wall_secs\":{BASELINE_WALL_SECS:.4},\
         \"events_per_sec\":{BASELINE_EVENTS_PER_SEC:.1},\
         \"packets_per_sec\":{BASELINE_PACKETS_PER_SEC:.1}}}"
    )
}

/// Pull `"key":<number>` out of the object that follows `"section":{`.
fn json_number(body: &str, section: &str, key: &str) -> Option<f64> {
    let sec = body.find(&format!("\"{section}\":{{"))?;
    let obj = &body[sec..];
    let end = obj.find('}')?;
    let obj = &obj[..end];
    let at = obj.find(&format!("\"{key}\":"))? + key.len() + 3;
    let rest = &obj[at..];
    let stop = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..stop].parse().ok()
}

/// CI schema gate: the file must exist, carry the right schema tag, and
/// report positive throughput for the current engine.
fn check() -> i32 {
    let body = match std::fs::read_to_string(OUT_PATH) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench-smoke: cannot read {OUT_PATH}: {e}");
            return 1;
        }
    };
    if !body.contains(&format!("\"schema\":\"{SCHEMA}\"")) {
        eprintln!("bench-smoke: {OUT_PATH} lacks schema tag {SCHEMA}");
        return 1;
    }
    let mut bad = 0;
    for key in ["drive_wall_secs", "events_per_sec", "packets_per_sec"] {
        match json_number(&body, "current", key) {
            Some(v) if v > 0.0 => {}
            other => {
                eprintln!("bench-smoke: current.{key} missing or non-positive ({other:?})");
                bad += 1;
            }
        }
    }
    if json_number(&body, "baseline", "events_per_sec").is_none() {
        eprintln!("bench-smoke: baseline.events_per_sec missing");
        bad += 1;
    }
    match json_number(&body, "scaling", "speedup_capacity_4x") {
        Some(v) if v >= SCALING_GATE_4X => {}
        Some(v) => {
            eprintln!(
                "bench-smoke: 4-shard capacity is only {v:.2}x the single shard \
                 (gate {SCALING_GATE_4X}x)"
            );
            bad += 1;
        }
        None => {
            eprintln!("bench-smoke: scaling.speedup_capacity_4x missing");
            bad += 1;
        }
    }
    if bad == 0 {
        println!("bench-smoke: {OUT_PATH} schema OK");
    }
    i32::from(bad > 0)
}

fn scaling_section(points: &[ScalingPoint], cores: u32) -> String {
    let single = points
        .iter()
        .find(|p| p.shards == 1)
        .map_or(1.0, |p| p.hosts_per_sec_capacity);
    let four = points
        .iter()
        .find(|p| p.shards == 4)
        .map_or(0.0, |p| p.hosts_per_sec_capacity);
    let body: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"shards\":{},\"drive_wall_secs\":{:.4},\
                 \"hosts_per_sec_wall\":{:.1},\"hosts_per_sec_capacity\":{:.1}}}",
                p.shards, p.wall_secs, p.hosts_per_sec_wall, p.hosts_per_sec_capacity
            )
        })
        .collect();
    // `speedup_capacity_4x` must precede `points`: the checker's section
    // scan stops at the first closing brace.
    format!(
        "{{\"cores\":{cores},\"speedup_capacity_4x\":{:.3},\"points\":[{}]}}",
        four / single,
        body.join(",")
    )
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        std::process::exit(check());
    }
    let scale = Scale::from_env();
    let threads = scenario_threads();
    let rounds = churn_rounds(scale);

    banner(&format!(
        "Event-loop kernel churn ({scale:?} scale: {rounds} rounds, {} hosts, {REPS} reps)",
        churn::HOSTS
    ));
    let m = measure_churn(rounds);
    println!(
        "churn: {:.3} s wall  {:.0} events/s  {:.0} packets/s  {:.3} pool allocs/packet",
        m.drive_wall_secs, m.events_per_sec, m.packets_per_sec, m.allocs_per_packet
    );
    let comparable = scale == Scale::Small;
    let speedup = if comparable {
        format!("{:.2}", m.events_per_sec / BASELINE_EVENTS_PER_SEC)
    } else {
        "null".to_owned()
    };
    if comparable {
        println!(
            "events/sec vs pre-overhaul baseline: {:.0} / {:.0} = {speedup}x",
            m.events_per_sec, BASELINE_EVENTS_PER_SEC
        );
    }

    banner(&format!(
        "End-to-end scan drive ({scale:?} scale, {threads} thread(s), {REPS} reps)"
    ));
    let population = standard_population(scale);
    let (scan, hosts_per_sec) = measure_scan(&population, Topology::threads(threads));
    println!(
        "scan: {:.3} s wall  {hosts_per_sec:.0} hosts/s  {:.0} events/s  {:.0} packets/s",
        scan.drive_wall_secs, scan.events_per_sec, scan.packets_per_sec
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get() as u32);
    banner(&format!(
        "Cores vs throughput ({scale:?} scale, shards {SCALING_SHARDS:?}, {cores} core(s))"
    ));
    let points = measure_scaling(&population);
    let scaling = scaling_section(&points, cores);

    let body = format!(
        "{{\"schema\":\"{SCHEMA}\",\
         \"scenario\":{{\"scale\":\"{scale:?}\",\"hosts\":{},\"batch\":{},\
         \"probe_bytes\":{},\"rounds\":{rounds},\"retx_spread_ms\":[1000,3000]}},\
         \"baseline\":{},\
         \"current\":{},\
         \"speedup_events_per_sec\":{speedup},\
         \"scan\":{{\"engine\":\"{CURRENT_ENGINE}\",\"threads\":{threads},\
         \"drive_wall_secs\":{:.4},\"hosts_per_sec\":{hosts_per_sec:.1},\
         \"events_per_sec\":{:.1},\"packets_per_sec\":{:.1},\
         \"baseline_wall_secs\":{SCAN_BASELINE_WALL_SECS:.4},\
         \"baseline_hosts_per_sec\":{SCAN_BASELINE_HOSTS_PER_SEC:.1}}},\
         \"scaling\":{scaling}}}\n",
        churn::HOSTS,
        churn::BATCH,
        churn::PROBE_BYTES,
        baseline_section(),
        json_section(&m, CURRENT_ENGINE),
        scan.drive_wall_secs,
        scan.events_per_sec,
        scan.packets_per_sec,
    );
    std::fs::write(OUT_PATH, body).expect("write BENCH_eventloop.json");
    println!("wrote {OUT_PATH}");
}
