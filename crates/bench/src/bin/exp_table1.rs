//! Experiment T1 — Table 1: scan data-set overview.
//!
//! Full-space HTTP and TLS scans; reports reachable counts and
//! success / few-data / error rates, against the paper's
//! HTTP 50.8/47.6/1.6 and TLS 85.6/13.3/1.1.

use iw_analysis::compare::{check_table1, render_checks, PAPER_TABLE1_HTTP, PAPER_TABLE1_TLS};
use iw_analysis::tables::Table1;
use iw_bench::{
    banner, compare_line, full_scan, standard_population, write_metrics_snapshot, Scale,
};
use iw_core::Protocol;

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Table 1: scan overview ({scale:?} scale)"));
    let population = standard_population(scale);

    let http = full_scan(&population, Protocol::Http);
    let tls = full_scan(&population, Protocol::Tls);

    write_metrics_snapshot("table1_http", &http);
    write_metrics_snapshot("table1_tls", &tls);

    let table = Table1::new(&[("HTTP", &http.summary), ("TLS", &tls.summary)]);
    println!("{}", table.render());

    let (hs, hf, he) = http.summary.rates();
    let (ts, tf, te) = tls.summary.rates();
    println!("paper vs measured:");
    compare_line("HTTP success", PAPER_TABLE1_HTTP.1, hs, "%");
    compare_line("HTTP few data", PAPER_TABLE1_HTTP.2, hf, "%");
    compare_line("HTTP error", PAPER_TABLE1_HTTP.3, he, "%");
    compare_line("TLS success", PAPER_TABLE1_TLS.1, ts, "%");
    compare_line("TLS few data", PAPER_TABLE1_TLS.2, tf, "%");
    compare_line("TLS error", PAPER_TABLE1_TLS.3, te, "%");

    // Dual-stack agreement (§4.1: 7 M dual, 6.2 M agree).
    let mut http_iw = std::collections::HashMap::new();
    for r in &http.results {
        if let Some(iw) = r.iw_estimate() {
            http_iw.insert(r.ip, iw);
        }
    }
    let mut dual = 0u64;
    let mut agree = 0u64;
    for r in &tls.results {
        if let Some(tls_iw) = r.iw_estimate() {
            if let Some(http_iw) = http_iw.get(&r.ip) {
                dual += 1;
                if *http_iw == tls_iw {
                    agree += 1;
                }
            }
        }
    }
    println!(
        "\ndual-protocol hosts with estimates: {dual}; agreeing: {agree} ({:.1}%; paper 6.2M/7M = 88.6%)",
        agree as f64 / dual.max(1) as f64 * 100.0
    );

    println!("\nshape checks:");
    let checks = check_table1(&table);
    print!("{}", render_checks(&checks));
    std::process::exit(i32::from(checks.iter().any(|c| !c.pass)));
}
