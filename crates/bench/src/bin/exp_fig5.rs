//! Experiment F5 — Figure 5: DBSCAN clustering of per-AS IW
//! distributions (features IW 1/2/4/10/other), against the paper:
//! large clusters representing ≈49 % (HTTP) / 48 % (TLS) of scanned IPs,
//! an IW10 cluster of content providers, an IW2 cluster of ISPs and
//! universities, an IW4 cluster mixing ISPs and hosters — plus the named
//! representatives (Amazon, Comcast, GoDaddy, backbone, Cloudflare,
//! Vodafone IT, Akamai, Korea Telecom).

use iw_analysis::dbscan::{dbscan, summarize, AsPoint};
use iw_analysis::figures::render_fig5;
use iw_bench::{banner, full_scan, standard_population, Scale};
use iw_core::Protocol;
use std::collections::HashMap;

fn as_points(
    out: &iw_core::ScanOutput,
    population: &iw_internet::Population,
) -> (Vec<AsPoint>, u64) {
    let mut per_as: HashMap<u32, HashMap<u32, u64>> = HashMap::new();
    let mut total = 0u64;
    for r in &out.results {
        if let Some(iw) = r.iw_estimate() {
            let Some(meta) = population.meta(r.ip) else {
                continue;
            };
            *per_as.entry(meta.asn).or_default().entry(iw).or_insert(0) += 1;
            total += 1;
        }
    }
    let points = per_as
        .into_iter()
        .filter(|(_, counts)| counts.values().sum::<u64>() >= 3)
        .map(|(asn, counts)| {
            let list: Vec<(u32, u64)> = counts.into_iter().collect();
            AsPoint::from_counts(asn, &list)
        })
        .collect();
    (points, total)
}

fn named_features(
    points: &[AsPoint],
    population: &iw_internet::Population,
) -> Vec<(String, [f64; 5])> {
    let mut out = Vec::new();
    for asn in [16509u32, 7922, 26496, 9121, 13335, 30722, 20940, 4766] {
        if let Some(p) = points.iter().find(|p| p.asn == asn) {
            let name = population
                .registry()
                .by_asn(asn)
                .map(|a| a.name.clone())
                .unwrap_or_else(|| format!("AS{asn}"));
            out.push((name, p.features));
        }
    }
    out
}

fn run(protocol: Protocol, scale: Scale) -> bool {
    let population = standard_population(scale);
    let out = full_scan(&population, protocol);
    let (points, total) = as_points(&out, &population);
    let labels = dbscan(&points, 0.12, 5);
    let clusters = summarize(&points, &labels);
    let named = named_features(&points, &population);

    println!("--- {protocol:?} ---");
    print!("{}", render_fig5(&clusters, &named, total));

    // Shape checks: at least 3 clusters; the biggest three dominated by
    // IW10, IW2 and IW4 respectively (in some order); clustered hosts
    // cover a sizeable fraction of all measured IPs.
    let clustered: u64 = clusters.iter().map(|c| c.hosts).sum();
    let coverage = clustered as f64 / total.max(1) as f64;
    let mut dominant: Vec<usize> = clusters
        .iter()
        .take(4)
        .map(|c| {
            c.centroid
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .unwrap_or(4)
        })
        .collect();
    dominant.sort_unstable();
    dominant.dedup();
    let ok = clusters.len() >= 3 && coverage > 0.40 && dominant.len() >= 2 && dominant.contains(&3); // some cluster is IW10-led
    println!(
        "[{}] F5 {protocol:?}: ≥3 clusters ({}), coverage {:.0}% (paper ≈49%), distinct leads {:?}\n",
        if ok { "PASS" } else { "FAIL" },
        clusters.len(),
        coverage * 100.0,
        dominant
    );
    ok
}

fn main() {
    let scale = Scale::from_env();
    banner(&format!(
        "Figure 5: per-AS DBSCAN clusters ({scale:?} scale)"
    ));
    let ok_http = run(Protocol::Http, scale);
    let ok_tls = run(Protocol::Tls, scale);
    std::process::exit(i32::from(!(ok_http && ok_tls)));
}
