//! Experiment T2 — Table 2: lower-bound IWs of hosts that ran out of
//! data, per protocol, against the paper's rows (HTTP peak: 45 % at
//! IW7 — the default-error-page bucket; TLS peak: 56.3 % at IW1 —
//! alert-sized answers; TLS NoData 17.8 %).

use iw_analysis::compare::{check_table2, render_checks, PAPER_TABLE2_HTTP, PAPER_TABLE2_TLS};
use iw_analysis::tables::Table2;
use iw_bench::{banner, full_scan, standard_population, Scale};
use iw_core::Protocol;

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Table 2: few-data lower bounds ({scale:?} scale)"));
    let population = standard_population(scale);

    let http = full_scan(&population, Protocol::Http);
    let tls = full_scan(&population, Protocol::Tls);
    let t_http = Table2::new(&http.results);
    let t_tls = Table2::new(&tls.results);

    println!("measured:");
    print!("{}", t_http.render("HTTP"));
    print!("{}", t_tls.render("TLS"));

    println!("\npaper:");
    let row = |label: &str, vals: &[f64; 11]| {
        print!("{label:<5} {:>5.1}% ", vals[0]);
        for v in &vals[1..] {
            print!("{v:>4.1}% ");
        }
        println!();
    };
    row("HTTP", &PAPER_TABLE2_HTTP);
    row("TLS", &PAPER_TABLE2_TLS);

    println!("\nshape checks:");
    let checks = check_table2(&t_http, &t_tls);
    print!("{}", render_checks(&checks));
    std::process::exit(i32::from(checks.iter().any(|c| !c.pass)));
}
