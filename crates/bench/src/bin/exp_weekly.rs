//! The paper's public service, reproduced: "We publish weekly results on
//! these 1 % scans on <https://iw.comsys.rwth-aachen.de>" (§4.1/§5).
//!
//! Simulates a season of weekly reduced-footprint scans — each week an
//! independent random sample of the probeable space — and renders the
//! dashboard: the per-week IW distribution and its stability, which is
//! the signal the authors monitor for RFC-adoption trends over time.

use iw_analysis::histogram::IwHistogram;
use iw_bench::{banner, standard_population, Scale, SEED};
use iw_core::{Protocol, ScanConfig, ScanRunner};
use iw_internet::util::mix;

fn main() {
    let scale = Scale::from_env();
    banner(&format!(
        "Weekly 1%-footprint scan service ({scale:?} scale)"
    ));
    let population = standard_population(scale);
    // At our scaled population a literal 1 % sample is only a few dozen
    // hosts; use the fraction that gives a comparable per-week sample.
    let fraction = match scale {
        Scale::Smoke | Scale::Small => 0.20,
        Scale::Medium => 0.10,
        Scale::Large => 0.02,
    };
    let weeks = 6u32;

    let mut histograms = Vec::new();
    for week in 0..weeks {
        let mut config = ScanConfig::study(Protocol::Http, population.space_size(), SEED);
        config.sample_fraction = fraction;
        config.sample_salt = mix(&[0x3ee7, u64::from(week)]);
        config.rate_pps = 4_000_000;
        let out = ScanRunner::new(&population)
            .config(config)
            .topology(iw_bench::bench_topology())
            .run();
        let hist = IwHistogram::from_results(&out.results);
        println!(
            "week {week}: {} hosts sampled, {} estimates",
            out.summary.reachable,
            hist.total()
        );
        histograms.push(hist);
    }

    println!("\nper-week IW shares (%):");
    print!("week ");
    for iw in [1u32, 2, 4, 10] {
        print!("  IW{iw:<4}");
    }
    println!();
    for (week, h) in histograms.iter().enumerate() {
        print!("{week:<4} ");
        for iw in [1u32, 2, 4, 10] {
            print!("  {:>5.1}", h.fraction(iw) * 100.0);
        }
        println!();
    }

    // Stability: the population does not drift in our world, so weekly
    // readings must agree within sampling noise — exactly the property
    // that makes the real service's *changes* meaningful.
    let mut max_dev = 0.0f64;
    for iw in [1u32, 2, 4, 10] {
        let fracs: Vec<f64> = histograms.iter().map(|h| h.fraction(iw)).collect();
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        for f in &fracs {
            max_dev = max_dev.max((f - mean).abs());
        }
    }
    let n_sample = histograms
        .iter()
        .map(IwHistogram::total)
        .min()
        .unwrap_or(1)
        .max(1) as f64;
    let threshold = 4.0 * (0.25 / n_sample).sqrt();
    println!(
        "\nmax per-bar deviation across weeks: {max_dev:.4} \
         (binomial 4σ threshold at n={n_sample:.0}: {threshold:.4})"
    );
    let ok = max_dev < threshold;
    println!(
        "[{}] weekly reduced-footprint scans give a stable monitoring signal",
        if ok { "PASS" } else { "FAIL" }
    );
    std::process::exit(i32::from(!ok));
}
