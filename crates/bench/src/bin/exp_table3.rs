//! Experiment T3 — Table 3: per-service IW distributions, classified
//! from public signals only (published provider ranges + reverse-DNS
//! keywords), against the paper's signatures: Akamai TLS ≈ pure IW4,
//! EC2/Cloudflare ≈ pure IW10, Azure IW4-heavy, access networks
//! IW2-heavy on HTTP and IW4-heavy on TLS.

use iw_analysis::classify::Service;
use iw_analysis::compare::{check_table3, render_checks, PAPER_TABLE3_HTTP, PAPER_TABLE3_TLS};
use iw_analysis::tables::Table3;
use iw_bench::{banner, full_scan, standard_population, Scale};
use iw_core::Protocol;

fn print_paper(rows: &[(Service, Option<[f64; 4]>); 5]) {
    println!("Service        IW1     IW2     IW4     IW10");
    for (svc, vals) in rows {
        let name = format!("{svc:?}");
        match vals {
            Some(v) => println!(
                "{name:<12} {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}",
                v[0], v[1], v[2], v[3]
            ),
            None => println!("{name:<12}     –       –       –       –"),
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    banner(&format!(
        "Table 3: per-service IW distribution ({scale:?} scale)"
    ));
    let population = standard_population(scale);

    let http = full_scan(&population, Protocol::Http);
    let tls = full_scan(&population, Protocol::Tls);
    let t_http = Table3::new(&http.results, &population);
    let t_tls = Table3::new(&tls.results, &population);

    println!("measured HTTP:");
    print!("{}", t_http.render());
    println!("measured TLS:");
    print!("{}", t_tls.render());

    println!("\npaper HTTP:");
    print_paper(&PAPER_TABLE3_HTTP);
    println!("paper TLS:");
    print_paper(&PAPER_TABLE3_TLS);

    // §4.3's PTR statistics: "hosts which encode their IP in the reverse
    // DNS record, i.e., 38.6% (62.5%) of all HTTP (TLS) IPs"; the access
    // heuristic then classifies "16% (18.1%) of all HTTP (TLS) IPs".
    println!("\nreverse-DNS statistics (paper: encode 38.6/62.5, access 16.0/18.1):");
    for (label, out) in [("HTTP", &http), ("TLS", &tls)] {
        let mut encoded = 0u64;
        let mut access = 0u64;
        let mut total = 0u64;
        for r in &out.results {
            let Some(meta) = population.meta(r.ip) else {
                continue;
            };
            total += 1;
            if let Some(rdns) = &meta.rdns {
                if iw_analysis::classify::rdns_encodes_ip(rdns, r.ip) {
                    encoded += 1;
                }
                if iw_analysis::classify::rdns_is_access(rdns, r.ip) {
                    access += 1;
                }
            }
        }
        println!(
            "  {label}: IP-encoded PTR {:.1}%, classified access {:.1}% (n={total})",
            encoded as f64 / total.max(1) as f64 * 100.0,
            access as f64 / total.max(1) as f64 * 100.0,
        );
    }

    println!("\nshape checks:");
    let checks = check_table3(&t_http, &t_tls);
    print!("{}", render_checks(&checks));
    std::process::exit(i32::from(checks.iter().any(|c| !c.pass)));
}
