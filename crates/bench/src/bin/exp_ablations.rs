//! Ablations of the methodology's three starred design choices
//! (DESIGN.md §5), measuring *quality*, not runtime:
//!
//! 1. **Tiny advertised MSS** — success rates collapse as the announced
//!    MSS grows, because responses stop covering the IW in bytes.
//! 2. **3-probe maximum vote** — single probes under loss misestimate;
//!    three probes with the maximum rule recover.
//! 3. **Exhaustion verification** — without the 2·MSS-window ACK check,
//!    out-of-data hosts are silently misreported as confident successes.

use iw_bench::{banner, standard_population, Scale, SEED};
use iw_core::{MssVerdict, Protocol, ScanConfig, ScanRunner};
use iw_internet::{Population, PopulationConfig};
use std::sync::Arc;

fn accuracy(pop: &Arc<Population>, out: &iw_core::ScanOutput) -> (u64, u64, u64) {
    let mut exact = 0u64;
    let mut wrong = 0u64;
    let mut inconclusive = 0u64;
    for r in &out.results {
        let gt = pop.ground_truth(r.ip).expect("scanned host exists");
        let mss = pop
            .host_config(r.ip)
            .expect("host exists")
            .os
            .effective_mss(Some(64));
        let truth = gt.iw.initial_segments(mss);
        match r.primary_verdict() {
            Some(MssVerdict::Success(est)) if est == truth => exact += 1,
            Some(MssVerdict::Success(_)) => wrong += 1,
            _ => inconclusive += 1,
        }
    }
    (exact, wrong, inconclusive)
}

fn main() {
    let scale = Scale::from_env();
    banner(&format!("Methodology ablations ({scale:?} scale)"));
    let mut failures = 0;

    // ---- 1. announced MSS ----
    println!("\nablation 1: announced MSS (HTTP success rate)");
    println!("  MSS    success%  few-data%");
    let pop = standard_population(scale);
    let mut success_at = Vec::new();
    for mss in [64u16, 128, 256, 536, 1336] {
        let mut config = ScanConfig::study(Protocol::Http, pop.space_size(), SEED);
        config.mss_list = vec![mss];
        config.rate_pps = 4_000_000;
        let out = ScanRunner::new(&pop)
            .config(config)
            .topology(iw_bench::bench_topology())
            .run();
        let (s, f, _) = out.summary.rates();
        println!("  {mss:<6} {s:>7.1}  {f:>8.1}");
        success_at.push((mss, s));
    }
    let s64 = success_at[0].1;
    let s1336 = success_at.last().expect("non-empty").1;
    if s64 <= s1336 + 15.0 {
        failures += 1;
        println!("  FAIL: tiny MSS should dominate large MSS by >15 points");
    } else {
        println!(
            "  PASS: MSS 64 succeeds on {s64:.1}% vs {s1336:.1}% at MSS 1336 — \
             the §3.1 design choice earns its keep"
        );
    }

    // ---- 2. probes per host under loss ----
    println!("\nablation 2: probes per MSS under calibrated loss (exact-recovery rate)");
    let (space, hosts) = scale.dimensions();
    let lossy = Arc::new(Population::new(PopulationConfig {
        seed: SEED,
        space_size: space,
        target_responsive: hosts,
        loss_scale: 1.5,
    }));
    println!("  probes  exact  wrong  inconclusive");
    let mut exact_at = Vec::new();
    for probes in [1u32, 3] {
        let mut config = ScanConfig::study(Protocol::Http, lossy.space_size(), SEED);
        config.probes_per_mss = probes;
        config.mss_list = vec![64];
        config.rate_pps = 4_000_000;
        let out = ScanRunner::new(&lossy)
            .config(config)
            .topology(iw_bench::bench_topology())
            .run();
        let (exact, wrong, inconclusive) = accuracy(&lossy, &out);
        println!("  {probes:<7} {exact:<6} {wrong:<6} {inconclusive}");
        exact_at.push((probes, exact, wrong));
    }
    let wrong_ratio_1 = exact_at[0].2 as f64 / (exact_at[0].1 + exact_at[0].2).max(1) as f64;
    let wrong_ratio_3 = exact_at[1].2 as f64 / (exact_at[1].1 + exact_at[1].2).max(1) as f64;
    if wrong_ratio_3 < wrong_ratio_1 {
        println!(
            "  PASS: voting cuts wrong confident estimates from {:.1}% to {:.1}%",
            wrong_ratio_1 * 100.0,
            wrong_ratio_3 * 100.0
        );
    } else {
        failures += 1;
        println!("  FAIL: 3-probe voting did not reduce wrong estimates");
    }

    // ---- 3. exhaustion verification ----
    println!("\nablation 3: exhaustion verification (TLS; wrong-success rate)");
    println!("  verify  exact  wrong  inconclusive");
    let mut wrongs = Vec::new();
    for verify in [true, false] {
        let mut config = ScanConfig::study(Protocol::Tls, pop.space_size(), SEED);
        config.verify_exhaustion = verify;
        config.rate_pps = 4_000_000;
        let out = ScanRunner::new(&pop)
            .config(config)
            .topology(iw_bench::bench_topology())
            .run();
        let (exact, wrong, inconclusive) = accuracy(&pop, &out);
        println!("  {verify:<7} {exact:<6} {wrong:<6} {inconclusive}");
        wrongs.push(wrong);
    }
    if wrongs[1] > wrongs[0] * 3 {
        println!(
            "  PASS: disabling the check multiplies silent misestimates ({} → {})",
            wrongs[0], wrongs[1]
        );
    } else {
        failures += 1;
        println!("  FAIL: verification ablation showed no effect ({wrongs:?})");
    }

    println!("\n{failures} ablation failures");
    std::process::exit(i32::from(failures > 0));
}
