//! # iw-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/exp_*.rs`),
//! plus Criterion benches. This library holds the shared machinery:
//! standard populations, scan runners, and paper-vs-measured reporting.
//!
//! Scale is controlled by the `IW_SCALE` environment variable:
//! `small` (CI/tests, default), `medium`, or `large` (closest to the
//! paper's relative numbers; takes minutes).
#![forbid(unsafe_code)]

use iw_core::{Protocol, ScanConfig, ScanOutput, ScanRunner, TargetSpec, Topology};
use iw_internet::{alexa, Population, PopulationConfig};
use std::sync::Arc;

/// Experiment scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~200 hosts in a 2¹³ space — sub-second even in debug builds
    /// (the CI bench-smoke population).
    Smoke,
    /// ~2.5 k hosts in a 2¹⁷ space — seconds.
    Small,
    /// ~12 k hosts in a 2¹⁹ space — tens of seconds.
    Medium,
    /// ~60 k hosts in a 2²² space — minutes.
    Large,
}

impl Scale {
    /// Read from `IW_SCALE` (default small).
    pub fn from_env() -> Scale {
        match std::env::var("IW_SCALE").as_deref() {
            Ok("large") => Scale::Large,
            Ok("medium") => Scale::Medium,
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Small,
        }
    }

    /// `(space_size, target_responsive)`.
    pub fn dimensions(self) -> (u32, u32) {
        match self {
            Scale::Smoke => (1 << 13, 200),
            Scale::Small => (1 << 17, 2_500),
            Scale::Medium => (1 << 19, 12_000),
            Scale::Large => (1 << 22, 60_000),
        }
    }

    /// Alexa-list size for this scale.
    pub fn alexa_n(self) -> usize {
        match self {
            Scale::Smoke => 50,
            Scale::Small => 400,
            Scale::Medium => 2_000,
            Scale::Large => 10_000,
        }
    }
}

/// The default experiment seed (fixed: experiments must be reproducible).
pub const SEED: u64 = 0x1307_2017;

/// Build the standard population at a scale.
pub fn standard_population(scale: Scale) -> Arc<Population> {
    let (space_size, target_responsive) = scale.dimensions();
    Arc::new(Population::new(PopulationConfig {
        seed: SEED,
        space_size,
        target_responsive,
        loss_scale: 0.0,
    }))
}

/// A population with calibrated link loss enabled (validation studies).
pub fn lossy_population(scale: Scale, loss_scale: f64) -> Arc<Population> {
    let (space_size, target_responsive) = scale.dimensions();
    Arc::new(Population::new(PopulationConfig {
        seed: SEED,
        space_size,
        target_responsive,
        loss_scale,
    }))
}

/// Threads to shard scans over.
pub fn threads() -> u32 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(4)
        .min(16)
}

/// The standard bench topology: all cores ([`Topology::threads`] maps
/// one core to [`Topology::Single`], so results stay byte-identical
/// either way).
pub fn bench_topology() -> Topology {
    Topology::threads(threads())
}

/// Run a full-space scan of one protocol with study parameters.
pub fn full_scan(population: &Arc<Population>, protocol: Protocol) -> ScanOutput {
    let mut config = ScanConfig::study(protocol, population.space_size(), SEED);
    config.rate_pps = 4_000_000; // virtual pps: compress virtual time
    ScanRunner::new(population)
        .config(config)
        .topology(bench_topology())
        .run()
}

/// Run a full-space scan at the paper's real packet rate (for the §3.4
/// efficiency numbers, where virtual duration matters).
pub fn paced_scan(population: &Arc<Population>, protocol: Protocol, rate_pps: u64) -> ScanOutput {
    let config = ScanConfig {
        rate_pps,
        ..ScanConfig::study(protocol, population.space_size(), SEED)
    };
    ScanRunner::new(population)
        .config(config)
        .topology(bench_topology())
        .run()
}

/// Scan the synthetic Alexa list (domains known → Host header + SNI).
pub fn alexa_scan(population: &Arc<Population>, protocol: Protocol, n: usize) -> ScanOutput {
    let list = alexa::build(population, n, 1);
    let targets: Vec<(u32, Option<String>)> =
        list.into_iter().map(|e| (e.ip, Some(e.domain))).collect();
    let mut config = ScanConfig::study(protocol, population.space_size(), SEED);
    config.targets = TargetSpec::List(targets);
    config.rate_pps = 4_000_000;
    // One shard: list experiments are small and their reports cite the
    // single-world ordering.
    ScanRunner::new(population).config(config).run()
}

/// Write an experiment's telemetry snapshot next to its report.
///
/// Every `exp_*` binary drops a `BENCH_<label>.metrics.json` with the
/// full metrics snapshot (scan + shard scope) and the event-log summary,
/// so runs can be diffed and regressions spotted without re-reading the
/// human-oriented stdout tables.
pub fn write_metrics_snapshot(label: &str, out: &ScanOutput) {
    let path = format!("BENCH_{label}.metrics.json");
    let body = format!(
        "{{\"metrics\":{},\"events\":{}}}\n",
        out.telemetry.metrics.to_json(),
        out.telemetry.events.summary_json()
    );
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("telemetry snapshot written to {path}");
    }
}

/// Pretty-print a paper-vs-measured header for an experiment.
pub fn banner(title: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("==============================================================");
}

/// Report a numeric comparison line.
pub fn compare_line(metric: &str, paper: f64, measured: f64, unit: &str) {
    println!("  {metric:<44} paper {paper:>8.1}{unit}   measured {measured:>8.1}{unit}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_dimensions_are_ordered() {
        let (s, sh) = Scale::Small.dimensions();
        let (m, mh) = Scale::Medium.dimensions();
        let (l, lh) = Scale::Large.dimensions();
        assert!(s < m && m < l);
        assert!(sh < mh && mh < lh);
    }

    #[test]
    fn standard_population_shape() {
        let p = standard_population(Scale::Small);
        assert_eq!(p.space_size(), 1 << 17);
        assert!(p.registry().ases().len() > 150);
    }

    #[test]
    fn threads_positive() {
        assert!(threads() >= 1);
    }
}
